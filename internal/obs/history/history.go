// Package history gives the obs registry a bounded time dimension: a
// ring-buffer time-series store that samples a Registry snapshot at a
// fixed interval and retains a downsampled window per series. Counters
// are differentiated into per-second rates, gauges keep their raw values,
// and histograms are reduced to trimmed-quantile digests — the same
// robust-estimation idiom the registry's own summaries use.
//
// Memory stays bounded the way the telemetry flight recorder's does:
// each series keeps at most MaxSamples points under stride-doubling
// downsampling (when the buffer fills, every other retained point is
// dropped and the keep-stride doubles), so the retained set is a pure
// function of how many ticks have elapsed — old history thins, recent
// history stays dense, and nothing ever grows without bound.
package history

import (
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultMaxSamples bounds one series' retained points. 512 keeps at
// least 256 samples live after any stride-doubling compaction.
const DefaultMaxSamples = 512

// DefaultInterval is the sampling cadence when none is configured.
const DefaultInterval = 5 * time.Second

// Digest is the retained shape of one histogram observation: the stream
// totals plus the trimmed quantile summary at sample time.
type Digest struct {
	Count       uint64  `json:"count"`
	Sum         float64 `json:"sum"`
	P50         float64 `json:"p50"`
	P95         float64 `json:"p95"`
	TrimmedMean float64 `json:"trimmedMean"`
}

// Sample is one retained point of one series. Tick is the monotone sample
// index since the store started (the downsampling grid is aligned to it);
// Unix is the sample wall-clock time in seconds.
type Sample struct {
	Tick int     `json:"tick"`
	Unix float64 `json:"unix"`
	// Value carries a gauge's raw value or a counter's per-second rate
	// over the preceding interval.
	Value float64 `json:"value"`
	// Hist carries a histogram's digest instead of Value.
	Hist *Digest `json:"hist,omitempty"`
}

// Series is one metric child's retained history.
type Series struct {
	Name       string   `json:"name"`
	Type       string   `json:"type"` // counter | gauge | histogram
	LabelNames []string `json:"labelNames,omitempty"`
	Labels     []string `json:"labels,omitempty"`
	// Stride is the current retention stride: one point kept per Stride
	// ticks (doubles as the window ages).
	Stride  int      `json:"stride"`
	Samples []Sample `json:"samples"`
}

// Snapshot is the wire shape of a history query.
type Snapshot struct {
	// IntervalSeconds is the configured sampling cadence.
	IntervalSeconds float64 `json:"intervalSeconds"`
	// MaxSamples bounds each series' retained points.
	MaxSamples int `json:"maxSamples"`
	// Ticks counts samples taken since the store started (retained or
	// not).
	Ticks  int      `json:"ticks"`
	Series []Series `json:"series"`
}

// Selection filters a history query.
type Selection struct {
	// Names keeps only the listed family names; empty keeps all.
	Names []string
	// Window keeps only samples younger than the duration (aligned to
	// the sample grid); zero keeps the full retained window.
	Window time.Duration
}

// Config tunes a Store.
type Config struct {
	// Interval is the sampling cadence (default DefaultInterval). The
	// store itself does not tick — the owner calls Sample — but the
	// cadence is reported in snapshots and drives window alignment.
	Interval time.Duration
	// MaxSamples bounds each series' retained points (default
	// DefaultMaxSamples, minimum 2).
	MaxSamples int
	// Clock overrides the time source (tests); nil means time.Now.
	Clock func() time.Time
}

// Store retains downsampled registry history. Safe for concurrent use:
// one goroutine ticks Sample while request handlers Query.
type Store struct {
	reg      *obs.Registry
	interval time.Duration
	max      int
	clock    func() time.Time

	mu     sync.Mutex
	tick   int
	series map[string]*buf
	order  []string
	// prev holds raw counter values at the previous tick for rate
	// differentiation.
	prev     map[string]float64
	prevTime time.Time
}

// buf is one series' ring state.
type buf struct {
	s      Series
	stride int
}

// New builds a store over the registry.
func New(reg *obs.Registry, cfg Config) *Store {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	if cfg.MaxSamples < 2 {
		cfg.MaxSamples = 2
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Store{
		reg:      reg,
		interval: cfg.Interval,
		max:      cfg.MaxSamples,
		clock:    clock,
		series:   map[string]*buf{},
		prev:     map[string]float64{},
	}
}

// Interval reports the configured sampling cadence.
func (st *Store) Interval() time.Duration { return st.interval }

// key identifies one child across snapshots.
func key(family string, labels []string) string {
	return family + "\x00" + strings.Join(labels, "\x00")
}

// Sample takes one registry snapshot and appends it to every series'
// history, differentiating counters against the previous tick.
func (st *Store) Sample() {
	snap := st.reg.Snapshot()
	now := st.clock()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.tick++
	dt := now.Sub(st.prevTime).Seconds()
	first := st.prevTime.IsZero()
	unix := float64(now.UnixNano()) / 1e9

	for _, fam := range snap {
		for _, sr := range fam.Series {
			k := key(fam.Name, sr.Labels)
			b, ok := st.series[k]
			if !ok {
				b = &buf{stride: 1, s: Series{
					Name:       fam.Name,
					Type:       fam.Type,
					LabelNames: fam.LabelNames,
					Labels:     sr.Labels,
				}}
				st.series[k] = b
				st.order = append(st.order, k)
			}
			p := Sample{Tick: st.tick, Unix: unix}
			switch fam.Type {
			case "counter":
				raw := sr.Value
				if prev, had := st.prev[k]; had && !first && dt > 0 && raw >= prev {
					p.Value = (raw - prev) / dt
				}
				st.prev[k] = raw
			case "histogram":
				if sr.Hist != nil {
					p.Hist = &Digest{
						Count:       sr.Hist.Count,
						Sum:         sr.Hist.Sum,
						P50:         sr.Hist.P50,
						P95:         sr.Hist.P95,
						TrimmedMean: sr.Hist.TrimmedMean,
					}
				}
			default: // gauge
				p.Value = sr.Value
			}
			b.add(p, st.max)
		}
	}
	st.prevTime = now
}

// add appends under the stride-doubling retention rule: a point is kept
// iff its tick falls on the current stride grid; when the buffer fills,
// the stride doubles and off-grid points compact away (telemetry's
// recorder uses the identical scheme).
func (b *buf) add(p Sample, max int) {
	if (p.Tick-1)%b.stride != 0 {
		return
	}
	b.s.Samples = append(b.s.Samples, p)
	for len(b.s.Samples) > max {
		b.stride *= 2
		kept := b.s.Samples[:0]
		for _, q := range b.s.Samples {
			if (q.Tick-1)%b.stride == 0 {
				kept = append(kept, q)
			}
		}
		b.s.Samples = kept
	}
	b.s.Stride = b.stride
}

// Query returns the retained history for the selection, series in
// first-seen order, each series' samples oldest-first.
func (st *Store) Query(sel Selection) Snapshot {
	var want map[string]bool
	if len(sel.Names) > 0 {
		want = make(map[string]bool, len(sel.Names))
		for _, n := range sel.Names {
			want[n] = true
		}
	}
	now := st.clock()

	st.mu.Lock()
	defer st.mu.Unlock()
	out := Snapshot{
		IntervalSeconds: st.interval.Seconds(),
		MaxSamples:      st.max,
		Ticks:           st.tick,
	}
	cutoff := 0.0
	if sel.Window > 0 {
		// Align the window to the sample grid so a 1m window at a 5s
		// cadence keeps exactly the last 12 grid points.
		aligned := sel.Window.Truncate(st.interval)
		if aligned < sel.Window {
			aligned += st.interval
		}
		cutoff = float64(now.Add(-aligned).UnixNano()) / 1e9
	}
	for _, k := range st.order {
		b := st.series[k]
		if want != nil && !want[b.s.Name] {
			continue
		}
		s := b.s
		samples := s.Samples
		if cutoff > 0 {
			i := 0
			for i < len(samples) && samples[i].Unix < cutoff {
				i++
			}
			samples = samples[i:]
		}
		s.Samples = append([]Sample(nil), samples...)
		if s.Stride == 0 {
			s.Stride = b.stride
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// At returns the retained sample of the named unlabeled series nearest to
// (and no younger than) the given age — the /statusz trend columns read
// "now vs 1m vs 10m" through it. ok is false when the series is unknown,
// labeled, or its history does not reach back that far.
func (st *Store) At(name string, age time.Duration) (Sample, bool) {
	now := st.clock()
	target := float64(now.Add(-age).UnixNano()) / 1e9

	st.mu.Lock()
	defer st.mu.Unlock()
	b, ok := st.series[key(name, nil)]
	if !ok {
		return Sample{}, false
	}
	var best Sample
	found := false
	for _, p := range b.s.Samples {
		if p.Unix <= target {
			best, found = p, true
		}
	}
	return best, found
}

// Latest returns the newest retained sample of the named unlabeled
// series.
func (st *Store) Latest(name string) (Sample, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	b, ok := st.series[key(name, nil)]
	if !ok || len(b.s.Samples) == 0 {
		return Sample{}, false
	}
	return b.s.Samples[len(b.s.Samples)-1], true
}
