package history

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock advances a fixed step per call site via Advance.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newFixture() (*obs.Registry, *Store, *fakeClock) {
	reg := obs.NewRegistry()
	clock := &fakeClock{now: time.Unix(1_000_000, 0)}
	st := New(reg, Config{Interval: time.Second, MaxSamples: 8, Clock: clock.Now})
	return reg, st, clock
}

func TestCounterRates(t *testing.T) {
	reg, st, clock := newFixture()
	c := reg.Counter("reqs_total", "test").With()
	st.Sample() // first tick: no rate yet
	for i := 0; i < 3; i++ {
		c.Add(10)
		clock.Advance(time.Second)
		st.Sample()
	}
	snap := st.Query(Selection{Names: []string{"reqs_total"}})
	if len(snap.Series) != 1 {
		t.Fatalf("%d series", len(snap.Series))
	}
	s := snap.Series[0]
	if s.Type != "counter" {
		t.Fatalf("type = %q", s.Type)
	}
	if len(s.Samples) != 4 {
		t.Fatalf("%d samples", len(s.Samples))
	}
	if s.Samples[0].Value != 0 {
		t.Errorf("first sample rate = %g, want 0 (no previous tick)", s.Samples[0].Value)
	}
	for _, p := range s.Samples[1:] {
		if math.Abs(p.Value-10) > 1e-9 {
			t.Errorf("rate = %g, want 10/s", p.Value)
		}
	}
}

func TestGaugeRaw(t *testing.T) {
	reg, st, clock := newFixture()
	g := reg.Gauge("depth", "test").With()
	for i := 1; i <= 3; i++ {
		g.Set(float64(i * 7))
		st.Sample()
		clock.Advance(time.Second)
	}
	s := st.Query(Selection{}).Series[0]
	for i, p := range s.Samples {
		if p.Value != float64((i+1)*7) {
			t.Errorf("sample %d = %g", i, p.Value)
		}
	}
}

func TestHistogramDigest(t *testing.T) {
	reg, st, clock := newFixture()
	h := reg.Histogram("lat_seconds", "test", nil).With()
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	st.Sample()
	clock.Advance(time.Second)
	st.Sample()
	s := st.Query(Selection{}).Series[0]
	if s.Type != "histogram" {
		t.Fatalf("type = %q", s.Type)
	}
	d := s.Samples[0].Hist
	if d == nil || d.Count != 100 {
		t.Fatalf("digest = %+v", d)
	}
	if math.Abs(d.P50-0.01) > 1e-9 || math.Abs(d.TrimmedMean-0.01) > 1e-9 {
		t.Errorf("digest quantiles = %+v", d)
	}
}

func TestStrideDoublingBoundsMemory(t *testing.T) {
	reg, st, clock := newFixture() // MaxSamples 8
	g := reg.Gauge("g", "test").With()
	for i := 0; i < 1000; i++ {
		g.Set(float64(i))
		st.Sample()
		clock.Advance(time.Second)
	}
	s := st.Query(Selection{}).Series[0]
	if len(s.Samples) > 8 {
		t.Fatalf("%d samples retained, max 8", len(s.Samples))
	}
	if len(s.Samples) < 4 {
		t.Fatalf("%d samples retained, want at least max/2", len(s.Samples))
	}
	if s.Stride < 128 {
		t.Errorf("stride = %d after 1000 ticks", s.Stride)
	}
	// Retained ticks sit on the stride grid, oldest-first.
	for i, p := range s.Samples {
		if (p.Tick-1)%s.Stride != 0 {
			t.Errorf("sample %d tick %d off the stride-%d grid", i, p.Tick, s.Stride)
		}
		if i > 0 && p.Tick <= s.Samples[i-1].Tick {
			t.Errorf("ticks not increasing at %d", i)
		}
	}
}

func TestDefaultRetainsAtLeast256(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &fakeClock{now: time.Unix(1_000_000, 0)}
	st := New(reg, Config{Interval: time.Second, Clock: clock.Now})
	g := reg.Gauge("g", "test").With()
	for i := 0; i < 10_000; i++ {
		g.Set(float64(i))
		st.Sample()
		clock.Advance(time.Second)
	}
	s := st.Query(Selection{}).Series[0]
	if len(s.Samples) < 256 {
		t.Fatalf("%d samples retained, want >= 256", len(s.Samples))
	}
	if len(s.Samples) > DefaultMaxSamples {
		t.Fatalf("%d samples retained, max %d", len(s.Samples), DefaultMaxSamples)
	}
}

func TestWindowAlignment(t *testing.T) {
	reg, st, clock := newFixture()
	g := reg.Gauge("g", "test").With()
	for i := 0; i < 6; i++ {
		g.Set(float64(i))
		st.Sample()
		clock.Advance(time.Second)
	}
	// 2.5s window aligns up to 3 grid points.
	snap := st.Query(Selection{Window: 2500 * time.Millisecond})
	got := len(snap.Series[0].Samples)
	if got != 3 {
		t.Fatalf("%d samples in 2.5s window, want 3", got)
	}
}

func TestSelectionFiltersNames(t *testing.T) {
	reg, st, _ := newFixture()
	reg.Gauge("a", "test").With().Set(1)
	reg.Gauge("b", "test").With().Set(2)
	st.Sample()
	snap := st.Query(Selection{Names: []string{"b"}})
	if len(snap.Series) != 1 || snap.Series[0].Name != "b" {
		t.Fatalf("selection = %+v", snap.Series)
	}
	if st.Query(Selection{}).Ticks != 1 {
		t.Error("tick count wrong")
	}
}

func TestLabeledSeriesSplit(t *testing.T) {
	reg, st, _ := newFixture()
	v := reg.Counter("hits_total", "test", "route")
	v.With("/a").Add(1)
	v.With("/b").Add(2)
	st.Sample()
	snap := st.Query(Selection{Names: []string{"hits_total"}})
	if len(snap.Series) != 2 {
		t.Fatalf("%d series, want 2 (one per label value)", len(snap.Series))
	}
	if snap.Series[0].Labels[0] != "/a" || snap.Series[1].Labels[0] != "/b" {
		t.Errorf("label order: %+v", snap.Series)
	}
}

func TestAtAndLatest(t *testing.T) {
	reg, st, clock := newFixture()
	g := reg.Gauge("g", "test").With()
	for i := 1; i <= 5; i++ {
		g.Set(float64(i))
		st.Sample()
		clock.Advance(time.Second)
	}
	// Clock is now 5s past the first sample; 3s ago lands on sample 3
	// (taken at t+2s, value 3).
	p, ok := st.At("g", 3*time.Second)
	if !ok || p.Value != 3 {
		t.Fatalf("At(3s) = %+v ok=%v, want value 3", p, ok)
	}
	if _, ok := st.At("g", time.Hour); ok {
		t.Error("At beyond history should miss")
	}
	if _, ok := st.At("missing", 0); ok {
		t.Error("At unknown series should miss")
	}
	last, ok := st.Latest("g")
	if !ok || last.Value != 5 {
		t.Fatalf("Latest = %+v ok=%v", last, ok)
	}
}

// The sampler must stay cheap: well under 1% of a bench-case step budget
// (tens of milliseconds). The bound here is generous for CI machines; the
// measured value is recorded in EXPERIMENTS.md.
func TestSampleOverhead(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(reg, Config{Interval: time.Second})
	for i := 0; i < 10; i++ {
		reg.Gauge(gaugeName(i), "test").With().Set(float64(i))
	}
	h := reg.Histogram("lat_seconds", "test", nil).With()
	for i := 0; i < 512; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	start := time.Now()
	const n = 100
	for i := 0; i < n; i++ {
		st.Sample()
	}
	per := time.Since(start) / n
	if per > 5*time.Millisecond {
		t.Errorf("Sample took %v per call; want well under 5ms", per)
	}
}

func gaugeName(i int) string {
	return "g" + string(rune('a'+i))
}
