// Package obs is the serving layer's dependency-free telemetry core:
// counters, gauges, and fixed-bucket latency histograms collected in a
// process-wide Registry, exposed both as Prometheus text exposition
// (GET /metricsz) and as structured snapshots the human-readable /statusz
// renders. Histograms additionally keep a bounded reservoir of raw
// observations so they can report trimmed quantile summaries — the same
// robust-estimation idiom internal/verify applies to error norms
// (Coretto & Hennig, arXiv:1406.0808): the worst (1-q) fraction of samples
// is discarded before summarizing, so a handful of outlier requests cannot
// poison the reported latency.
//
// The package deliberately has no dependencies beyond the standard library
// and is safe for concurrent use; every metric is cheap enough for hot
// request paths.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultTrimQuantile is the kept fraction for trimmed latency summaries,
// matching internal/verify's default for error norms.
const DefaultTrimQuantile = 0.95

// reservoirSize bounds the raw-observation window a histogram keeps for
// quantile summaries; beyond it the window slides (newest wins).
const reservoirSize = 512

// DefBuckets are the default latency bucket upper bounds, in seconds
// (sub-millisecond cache hits through multi-second simulation runs).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	// bits holds the float64 value atomically.
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored — counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	for {
		old := c.bits.Load()
		val := math.Float64frombits(old) + delta
		if c.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution plus a sliding reservoir of raw
// observations for quantile summaries. Buckets are upper bounds; an
// implicit +Inf bucket catches the tail.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	counts  []uint64 // len(bounds)+1; last is the +Inf bucket
	count   uint64
	sum     float64
	samples []float64 // reservoir ring
	next    int
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted ascending; nil selects DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if len(h.samples) < reservoirSize {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
	}
	h.next = (h.next + 1) % reservoirSize
}

// Merge accumulates another histogram into h. The bucket layouts must
// match; mismatched layouts are rejected with an error (merging
// incompatible distributions would silently corrupt both). The source is
// copied under its own lock first, so concurrent cross-merges cannot
// deadlock.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	oBounds := append([]float64(nil), o.bounds...)
	oCounts := append([]uint64(nil), o.counts...)
	oCount, oSum := o.count, o.sum
	oSamples := append([]float64(nil), o.samples...)
	o.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.bounds) != len(oBounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.bounds), len(oBounds))
	}
	for i, b := range h.bounds {
		if b != oBounds[i] {
			return fmt.Errorf("obs: merging histograms with mismatched bucket %d (%g vs %g)", i, b, oBounds[i])
		}
	}
	for i, c := range oCounts {
		h.counts[i] += c
	}
	h.count += oCount
	h.sum += oSum
	for _, v := range oSamples {
		if len(h.samples) < reservoirSize {
			h.samples = append(h.samples, v)
		} else {
			h.samples[h.next] = v
		}
		h.next = (h.next + 1) % reservoirSize
	}
	return nil
}

// Summary is a point-in-time digest of a histogram: total count and sum
// from the full stream, quantiles and the trimmed mean from the reservoir.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	// TrimmedMean discards the worst (1-q) fraction of reservoir samples
	// before averaging (the verify trimming idiom), so it tracks typical
	// behavior rather than outliers.
	TrimmedMean float64 `json:"trimmedMean"`
	// Trimmed is how many reservoir samples the trimmed mean discarded.
	Trimmed int `json:"trimmed"`
}

// Summarize digests the histogram with kept fraction q (<=0 or >1 selects
// DefaultTrimQuantile).
func (h *Histogram) Summarize(q float64) Summary {
	if q <= 0 || q > 1 {
		q = DefaultTrimQuantile
	}
	h.mu.Lock()
	s := Summary{Count: h.count, Sum: h.sum}
	samples := append([]float64(nil), h.samples...)
	h.mu.Unlock()

	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	if len(samples) == 0 {
		return s
	}
	sort.Float64s(samples)
	s.P50 = quantile(samples, 0.50)
	s.P90 = quantile(samples, 0.90)
	s.P95 = quantile(samples, 0.95)
	s.P99 = quantile(samples, 0.99)
	s.Max = samples[len(samples)-1]

	drop := int(float64(len(samples)) * (1 - q))
	kept := samples[:len(samples)-drop]
	s.Trimmed = drop
	var sum float64
	for _, v := range kept {
		sum += v
	}
	if len(kept) > 0 {
		s.TrimmedMean = sum / float64(len(kept))
	}
	return s
}

// quantile reads the q-th quantile from sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// snapshot returns the cumulative bucket counts, total count, and sum (the
// Prometheus histogram exposition shape).
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return h.bounds, cumulative, h.count, h.sum
}

// metricKind enumerates the family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and one child per
// label-value combination.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]any // Counter | Gauge | Histogram, keyed by joined label values; guarded by mu
	keys     []string       // insertion order for deterministic exposition; guarded by mu
}

// labelKey joins label values into the child map key. Values never contain
// \x00 in practice (routes, methods, status codes, phase names).
func labelKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) child(values []string, make func() any) any {
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
	order    []string           // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family registers (or fetches) one family; re-registration with a
// different schema panics — that is a programming error, not runtime state.
func (r *Registry) family(name, help string, kind metricKind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		children:   map[string]any{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelNames, nil)}
}

// With returns the child counter for the label values (created on first
// use). The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelNames, nil)}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ f *family }

// Histogram registers (or fetches) a histogram family over the bucket
// bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	buckets := v.f.buckets
	return v.f.child(values, func() any { return NewHistogram(buckets) }).(*Histogram)
}

// Series is one (label values, metric) pair of a family snapshot.
type Series struct {
	Labels []string // values, aligned with the family's LabelNames
	Value  float64  // counters and gauges
	Hist   *Summary // histograms
}

// FamilySnapshot is a point-in-time view of one family.
type FamilySnapshot struct {
	Name       string
	Help       string
	Type       string
	LabelNames []string
	Series     []Series
}

// Snapshot digests every family in registration order; series appear in
// first-use order. Histogram summaries use DefaultTrimQuantile.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String(),
			LabelNames: f.labelNames}
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			s := Series{Labels: strings.Split(k, "\x00")}
			if k == "" {
				s.Labels = nil
			}
			switch c := children[i].(type) {
			case *Counter:
				s.Value = c.Value()
			case *Gauge:
				s.Value = c.Value()
			case *Histogram:
				sum := c.Summarize(0)
				s.Hist = &sum
			}
			fs.Series = append(fs.Series, s)
		}
		out = append(out, fs)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series, and the
// _bucket/_sum/_count triplet for histograms.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		for i, k := range keys {
			var values []string
			if k != "" {
				values = strings.Split(k, "\x00")
			}
			base := promLabels(f.labelNames, values, "", 0)
			switch c := children[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, base, promFloat(c.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, base, promFloat(c.Value()))
			case *Histogram:
				bounds, cum, count, sum := c.snapshot()
				for bi, b := range bounds {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						promLabels(f.labelNames, values, "le", b), cum[bi])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					promLabels(f.labelNames, values, "le", math.Inf(1)), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, promFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, count)
			}
		}
	}
}

// promLabels renders a label set, optionally with a trailing le bound.
func promLabels(names, values []string, le string, bound float64) string {
	var parts []string
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		parts = append(parts, fmt.Sprintf("%s=%q", n, v))
	}
	if le != "" {
		if math.IsInf(bound, 1) {
			parts = append(parts, `le="+Inf"`)
		} else {
			parts = append(parts, fmt.Sprintf("le=%q", promFloat(bound)))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat formats a value the way Prometheus expects (shortest
// round-trippable decimal).
func promFloat(v float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0") }

// NewRequestID returns a 16-hex-char random request identifier. Randomness
// failures degrade to a process-local sequence — request IDs are a tracing
// aid, not a security boundary.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", reqFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var reqFallback atomic.Uint64
