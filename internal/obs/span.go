// Span and SpanSet trace per-request and per-job lifecycle phases: a Span
// measures one named stage, a SpanSet accumulates the stages of one
// traced unit (an HTTP request, a job's queue-wait → run → checkpoint →
// verify → persist lifecycle) into an ordered, JSON-serializable record
// the server persists next to the verification report.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Phase is one named stage of a traced lifecycle, in seconds.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// SpanSet is the recorded lifecycle of one traced unit. The zero value is
// ready to use. Not safe for concurrent use — a lifecycle is owned by the
// goroutine executing it.
type SpanSet struct {
	// Phases are the recorded stages in the order they were added; repeated
	// names accumulate into one phase (a chunked run checkpoints many
	// times, but reports one checkpoint phase).
	Phases []Phase `json:"phases"`
	// Total is the sum of the phase durations.
	Total float64 `json:"total"`
}

// Add accumulates d into the named phase (creating it at the end of the
// order on first use). Negative durations are clamped to zero — a clock
// that steps backwards must not produce negative spans.
func (ss *SpanSet) Add(name string, d time.Duration) {
	ss.AddSeconds(name, d.Seconds())
}

// AddSeconds is Add for a duration already measured in seconds.
func (ss *SpanSet) AddSeconds(name string, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	ss.Total += seconds
	for i := range ss.Phases {
		if ss.Phases[i].Name == name {
			ss.Phases[i].Seconds += seconds
			return
		}
	}
	ss.Phases = append(ss.Phases, Phase{Name: name, Seconds: seconds})
}

// Seconds returns the accumulated duration of the named phase (0 when it
// was never recorded).
func (ss *SpanSet) Seconds(name string) float64 {
	for _, p := range ss.Phases {
		if p.Name == name {
			return p.Seconds
		}
	}
	return 0
}

// ServerTiming renders the set as an RFC 9211-style Server-Timing header
// value: `queue-wait;dur=1.2, run;dur=340.5` (durations in milliseconds).
// Phase names are sanitized to header-token characters.
func (ss *SpanSet) ServerTiming() string {
	parts := make([]string, 0, len(ss.Phases))
	for _, p := range ss.Phases {
		parts = append(parts, fmt.Sprintf("%s;dur=%.1f", headerToken(p.Name), p.Seconds*1e3))
	}
	return strings.Join(parts, ", ")
}

// headerToken keeps only RFC 7230 token characters (letters, digits, and
// common symbol characters), mapping everything else to '-'.
func headerToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Span measures one in-progress stage; construct with StartSpan and finish
// with End (or EndTo to record into a SpanSet).
type Span struct {
	name  string
	start time.Time
	clock func() time.Time
}

// StartSpan begins measuring a named stage. clock overrides the time
// source (tests); nil means time.Now.
func StartSpan(name string, clock func() time.Time) *Span {
	if clock == nil {
		clock = time.Now
	}
	return &Span{name: name, start: clock(), clock: clock}
}

// End returns the elapsed duration since the span started.
func (s *Span) End() time.Duration { return s.clock().Sub(s.start) }

// EndTo records the elapsed duration into the set under the span's name
// and returns it.
func (s *Span) EndTo(ss *SpanSet) time.Duration {
	d := s.End()
	ss.Add(s.name, d)
	return d
}
