// Chrome-trace-event (Perfetto) encoding of measured traces. The document
// produced here is the JSON object format of the Trace Event spec — an
// object with a "traceEvents" array — which chrome://tracing and
// https://ui.perfetto.dev load directly. Viewers ignore unknown top-level
// members, so the POP efficiency comparison rides alongside the events.
//
// Every field that influences the encoded bytes is deterministic: event
// order follows insertion order, map keys marshal sorted, and timestamps
// are exact float64 microseconds derived from persisted artifacts — the
// same inputs always re-encode to byte-identical JSON.
package trace

import "fmt"

// Frozen trace categories. The obsnames analyzer requires every category
// passed to Slice/SliceData to be a compile-time constant, the same
// frozen-name rule metric families obey — renaming a category is an API
// change, not a refactor.
const (
	// CatPhase tags engine execution slices (hydro phases, halo exchange,
	// collectives).
	CatPhase = "phase"
	// CatLifecycle tags server job-lifecycle slices (queue-wait, restore,
	// run, checkpoint, verify).
	CatLifecycle = "lifecycle"
)

// Event is one Chrome trace-event. Ph "X" is a complete slice with a
// duration; Ph "M" is metadata naming a process or thread. Timestamps and
// durations are microseconds (float64 — the spec permits fractional
// microseconds, and integers would truncate sub-microsecond phases).
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Perfetto accumulates trace events in emission order. The zero value is
// ready to use; it is not safe for concurrent use (documents are built by
// one goroutine from persisted data).
type Perfetto struct {
	events []Event
}

// Process emits a process_name metadata event: the top-level track group
// label in the viewer.
func (p *Perfetto) Process(pid int, name string) {
	p.events = append(p.events, Event{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]string{"name": name},
	})
}

// Thread emits a thread_name metadata event: the per-row label inside a
// process group (one row per rank).
func (p *Perfetto) Thread(pid, tid int, name string) {
	p.events = append(p.events, Event{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]string{"name": name},
	})
}

// Slice emits one complete ("X") slice. start and dur are seconds;
// zero-duration slices are dropped — they carry no information and clutter
// the viewer. The category AND the name must be compile-time constant
// strings (enforced by the obsnames analyzer); use SliceData when the name
// comes from recorded data.
func (p *Perfetto) Slice(cat, name string, pid, tid int, start, dur float64, args map[string]string) {
	p.emit(cat, name, pid, tid, start, dur, args)
}

// SliceData is Slice for names carried by measured artifacts (phase
// letters of a serial run, lifecycle span names of a persisted report) —
// the category must still be a frozen constant, the name may be data.
func (p *Perfetto) SliceData(cat, name string, pid, tid int, start, dur float64, args map[string]string) {
	p.emit(cat, name, pid, tid, start, dur, args)
}

func (p *Perfetto) emit(cat, name string, pid, tid int, start, dur float64, args map[string]string) {
	if dur <= 0 {
		return
	}
	p.events = append(p.events, Event{
		Name: name, Cat: cat, Ph: "X",
		TS: start * 1e6, Dur: dur * 1e6,
		PID: pid, TID: tid, Args: args,
	})
}

// Events returns the accumulated events in emission order.
func (p *Perfetto) Events() []Event { return p.events }

// POPReport is the wire shape of one POP efficiency analysis (the JSON
// companion of Metrics, which predates the API and stays untagged).
type POPReport struct {
	Ranks              int     `json:"ranks"`
	Runtime            float64 `json:"runtime"`
	AvgUseful          float64 `json:"avgUseful"`
	MaxUseful          float64 `json:"maxUseful"`
	TotalMPI           float64 `json:"totalMPI"`
	LoadBalance        float64 `json:"loadBalance"`
	CommEfficiency     float64 `json:"commEfficiency"`
	ParallelEfficiency float64 `json:"parallelEfficiency"`
}

// Report converts the analysis values to their wire shape.
func (m Metrics) Report() POPReport {
	return POPReport{
		Ranks:              m.Ranks,
		Runtime:            m.Runtime,
		AvgUseful:          m.AvgUseful,
		MaxUseful:          m.MaxUseful,
		TotalMPI:           m.TotalMPI,
		LoadBalance:        m.LoadBalance,
		CommEfficiency:     m.CommEfficiency,
		ParallelEfficiency: m.ParallelEfficiency,
	}
}

// POPComparison reports the POP metrics computed from measured intervals
// next to the closed-form modeled prediction for the same job shape — the
// measured-vs-modeled confrontation the paper's §5.2 analysis is about.
type POPComparison struct {
	Measured POPReport  `json:"measured"`
	Modeled  *POPReport `json:"modeled,omitempty"`
}

// Document is the top-level Chrome trace-event JSON object. Metadata keys
// marshal sorted; the pop member is ignored by viewers but carried for API
// consumers.
type Document struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
	POP             *POPComparison    `json:"pop,omitempty"`
}

// Document assembles the measured trace into a loadable Chrome trace-event
// document: pid 0 is the server lifecycle track, pid 1 the engine with one
// thread row per rank. Event order — metadata first, then lifecycle, then
// engine intervals rank-major — is fixed, so equal inputs produce equal
// documents.
func (m Measured) Document(meta map[string]string, pop *POPComparison) Document {
	var p Perfetto
	p.Process(0, "server")
	p.Thread(0, 0, "job lifecycle")
	p.Process(1, "engine")
	nr := 0
	for _, iv := range m.Intervals {
		if iv.Rank+1 > nr {
			nr = iv.Rank + 1
		}
	}
	for r := 0; r < nr; r++ {
		p.Thread(1, r, fmt.Sprintf("rank %d", r))
	}
	for _, iv := range m.Lifecycle {
		p.SliceData(CatLifecycle, iv.Phase, 0, 0, iv.Start, iv.End-iv.Start, nil)
	}
	for _, iv := range m.Intervals {
		p.SliceData(CatPhase, iv.Phase, 1, iv.Rank, iv.Start, iv.End-iv.Start,
			map[string]string{"state": iv.State.String()})
	}
	return Document{TraceEvents: p.Events(), DisplayTimeUnit: "ms", Metadata: meta, POP: pop}
}
