// Package trace is the mini-app's Extrae substitute (paper §5.2): it records
// per-rank, per-phase intervals of simulated execution, computes the POP
// Centre-of-Excellence efficiency metrics the paper reports (load balance,
// communication efficiency, computation scalability, global efficiency), and
// renders an ASCII Paraver-style timeline like the paper's Figure 4.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// State classifies an interval, mirroring the Extrae states in Figure 4:
// computing (blue), MPI communication (orange), thread synchronization
// (red), fork/join (yellow), idle (black).
type State int

const (
	// Compute is useful computation.
	Compute State = iota
	// MPI is communication (send/recv/collective, including wait).
	MPI
	// Sync is thread synchronization overhead.
	Sync
	// ForkJoin is parallel-region management overhead.
	ForkJoin
	// Idle is time with no work.
	Idle
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Compute:
		return "compute"
	case MPI:
		return "mpi"
	case Sync:
		return "sync"
	case ForkJoin:
		return "fork-join"
	case Idle:
		return "idle"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// glyph is the timeline character for a state.
func (s State) glyph() byte {
	switch s {
	case Compute:
		return '#'
	case MPI:
		return 'M'
	case Sync:
		return 's'
	case ForkJoin:
		return 'f'
	default:
		return '.'
	}
}

// Interval is one traced span on one rank.
type Interval struct {
	Rank       int
	Phase      string // paper Figure 4 phases: "A".."J"
	State      State
	Start, End float64 // simulated seconds
}

// Tracer collects intervals from concurrent ranks.
type Tracer struct {
	mu        sync.Mutex
	intervals []Interval
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Record adds an interval; safe for concurrent use.
func (t *Tracer) Record(rank int, phase string, state State, start, end float64) {
	if end < start {
		start, end = end, start
	}
	t.mu.Lock()
	t.intervals = append(t.intervals, Interval{Rank: rank, Phase: phase, State: state, Start: start, End: end})
	t.mu.Unlock()
}

// Intervals returns a copy of the recorded intervals.
func (t *Tracer) Intervals() []Interval {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Interval(nil), t.intervals...)
}

// Reset discards all recorded intervals.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.intervals = t.intervals[:0]
	t.mu.Unlock()
}

// Metrics are the POP multiplicative efficiency model values (all in [0,1]
// for well-formed traces; paper §5.2 discusses exactly these).
type Metrics struct {
	Ranks int
	// Runtime is the span max(End) - min(Start).
	Runtime float64
	// AvgUseful and MaxUseful are per-rank useful-computation totals.
	AvgUseful, MaxUseful float64
	// TotalMPI is summed MPI time.
	TotalMPI float64
	// LoadBalance = AvgUseful / MaxUseful.
	LoadBalance float64
	// CommEfficiency = MaxUseful / Runtime.
	CommEfficiency float64
	// ParallelEfficiency = LoadBalance * CommEfficiency = AvgUseful/Runtime.
	ParallelEfficiency float64
}

// Analyze computes POP metrics over the recorded intervals.
func (t *Tracer) Analyze() Metrics { return AnalyzeIntervals(t.Intervals()) }

// AnalyzeIntervals computes POP metrics over an interval slice — the same
// arithmetic Tracer.Analyze applies to live-recorded traces, usable on
// measured intervals reassembled from persisted artifacts.
func AnalyzeIntervals(ivs []Interval) Metrics {
	var m Metrics
	if len(ivs) == 0 {
		return m
	}
	useful := map[int]float64{}
	lo, hi := ivs[0].Start, ivs[0].End
	for _, iv := range ivs {
		if iv.Start < lo {
			lo = iv.Start
		}
		if iv.End > hi {
			hi = iv.End
		}
		switch iv.State {
		case Compute:
			useful[iv.Rank] += iv.End - iv.Start
		case MPI:
			m.TotalMPI += iv.End - iv.Start
		}
	}
	m.Ranks = len(useful)
	m.Runtime = hi - lo
	for _, u := range useful {
		m.AvgUseful += u
		if u > m.MaxUseful {
			m.MaxUseful = u
		}
	}
	if m.Ranks > 0 {
		m.AvgUseful /= float64(m.Ranks)
	}
	if m.MaxUseful > 0 {
		m.LoadBalance = m.AvgUseful / m.MaxUseful
	}
	if m.Runtime > 0 {
		m.CommEfficiency = m.MaxUseful / m.Runtime
	}
	m.ParallelEfficiency = m.LoadBalance * m.CommEfficiency
	return m
}

// ComputationScalability is the POP cross-scale metric: the ratio of total
// useful computation at the reference scale to the current scale (1 = no
// redundant work added by scaling out).
func ComputationScalability(ref, cur Metrics) float64 {
	refTotal := ref.AvgUseful * float64(ref.Ranks)
	curTotal := cur.AvgUseful * float64(cur.Ranks)
	if curTotal == 0 {
		return 0
	}
	return refTotal / curTotal
}

// GlobalEfficiency combines parallel efficiency with computation
// scalability, the headline number whose decline from 48 to 192 cores the
// paper attributes to load imbalance.
func GlobalEfficiency(ref, cur Metrics) float64 {
	return cur.ParallelEfficiency * ComputationScalability(ref, cur)
}

// Timeline renders an ASCII Paraver-style visualization: one row per rank,
// time bucketed into `width` columns, each cell showing the dominant state
// ('#'=compute, 'M'=MPI, 's'=sync, 'f'=fork-join, '.'=idle), topped by a
// phase ruler (the paper's A..J annotations).
func (t *Tracer) Timeline(width int) string { return TimelineOf(t.Intervals(), width) }

// TimelineOf renders the ASCII Paraver-style timeline for an interval
// slice (see Tracer.Timeline).
func TimelineOf(ivs []Interval, width int) string {
	if len(ivs) == 0 || width <= 0 {
		return "(empty trace)\n"
	}
	lo, hi := ivs[0].Start, ivs[0].End
	maxRank := 0
	for _, iv := range ivs {
		if iv.Start < lo {
			lo = iv.Start
		}
		if iv.End > hi {
			hi = iv.End
		}
		if iv.Rank > maxRank {
			maxRank = iv.Rank
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	nr := maxRank + 1
	// Dominant state per (rank, bucket) by accumulated time; idle default.
	cells := make([][]map[State]float64, nr)
	phaseRow := make([]map[string]float64, width)
	for r := range cells {
		cells[r] = make([]map[State]float64, width)
	}
	for i := range phaseRow {
		phaseRow[i] = map[string]float64{}
	}
	for _, iv := range ivs {
		b0 := int(float64(width) * (iv.Start - lo) / span)
		b1 := int(float64(width) * (iv.End - lo) / span)
		if b1 >= width {
			b1 = width - 1
		}
		for b := b0; b <= b1; b++ {
			// Overlap of the interval with bucket b.
			bs := lo + span*float64(b)/float64(width)
			be := lo + span*float64(b+1)/float64(width)
			ov := minF(iv.End, be) - maxF(iv.Start, bs)
			if ov <= 0 {
				continue
			}
			if cells[iv.Rank][b] == nil {
				cells[iv.Rank][b] = map[State]float64{}
			}
			cells[iv.Rank][b][iv.State] += ov
			if iv.Phase != "" {
				phaseRow[b][iv.Phase] += ov
			}
		}
	}
	var sb strings.Builder
	// Phase ruler.
	sb.WriteString("phase ")
	for b := 0; b < width; b++ {
		best, bestV := " ", 0.0
		for ph, v := range phaseRow[b] {
			if v > bestV || (v == bestV && ph < best) {
				best, bestV = ph, v
			}
		}
		sb.WriteString(best[:1])
	}
	sb.WriteByte('\n')
	for r := 0; r < nr; r++ {
		fmt.Fprintf(&sb, "r%-4d ", r)
		for b := 0; b < width; b++ {
			m := cells[r][b]
			if len(m) == 0 {
				sb.WriteByte(' ')
				continue
			}
			var bestS State
			bestV := -1.0
			// Deterministic tie-break: iterate states in fixed order.
			for _, st := range []State{Compute, MPI, Sync, ForkJoin, Idle} {
				if v, ok := m[st]; ok && v > bestV {
					bestS, bestV = st, v
				}
			}
			sb.WriteByte(bestS.glyph())
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("legend: #=compute M=mpi s=sync f=fork-join .=idle\n")
	return sb.String()
}

// PhaseBreakdown sums time per phase per state across ranks, sorted by
// phase label — the numeric companion to the timeline.
func (t *Tracer) PhaseBreakdown() []PhaseStat { return PhaseBreakdownOf(t.Intervals()) }

// PhaseBreakdownOf aggregates an interval slice per phase per state (see
// Tracer.PhaseBreakdown).
func PhaseBreakdownOf(ivs []Interval) []PhaseStat {
	agg := map[string]*PhaseStat{}
	for _, iv := range ivs {
		ph := iv.Phase
		if ph == "" {
			ph = "(untagged)"
		}
		st, ok := agg[ph]
		if !ok {
			st = &PhaseStat{Phase: ph}
			agg[ph] = st
		}
		d := iv.End - iv.Start
		switch iv.State {
		case Compute:
			st.Compute += d
		case MPI:
			st.MPI += d
		default:
			st.Other += d
		}
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// PhaseStat aggregates one phase across ranks.
type PhaseStat struct {
	Phase   string
	Compute float64
	MPI     float64
	Other   float64
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
