package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func sampleInput() MeasuredInput {
	return MeasuredInput{
		Ranks: []RankTotals{
			{Rank: 0, Compute: 4.0, Halo: 0.5, Collective: 0.25, Seconds: 4.75},
			{Rank: 1, Compute: 3.0, Halo: 0.75, Collective: 1.0, Seconds: 4.75},
		},
		Steps: []StepClassSeconds{
			{Step: 1, Compute: 2.0, Halo: 0.3, Collective: 0.4},
			{Step: 2, Compute: 3.0, Halo: 0.6, Collective: 0.5},
			{Step: 3, Compute: 2.0, Halo: 0.35, Collective: 0.35},
		},
		Lifecycle: []LifecycleSpan{
			{Name: "queue-wait", Seconds: 0.01},
			{Name: "run", Seconds: 4.75},
			{Name: "verify", Seconds: 0.002},
		},
		Offset: 0.01,
	}
}

// Per-rank per-class interval sums must reproduce the timing totals — the
// invariant the smoke contract checks against the persisted report.
func TestBuildMeasuredSumsMatchTotals(t *testing.T) {
	in := sampleInput()
	m := BuildMeasured(in)
	sums := map[int]map[string]float64{}
	for _, iv := range m.Intervals {
		if sums[iv.Rank] == nil {
			sums[iv.Rank] = map[string]float64{}
		}
		sums[iv.Rank][iv.Phase] += iv.End - iv.Start
	}
	for _, rk := range in.Ranks {
		got := sums[rk.Rank]
		for _, c := range []struct {
			phase string
			want  float64
		}{{PhaseCompute, rk.Compute}, {PhaseHalo, rk.Halo}, {PhaseCollective, rk.Collective}} {
			if math.Abs(got[c.phase]-c.want) > 1e-12 {
				t.Errorf("rank %d %s = %g, want %g", rk.Rank, c.phase, got[c.phase], c.want)
			}
		}
	}
}

func TestBuildMeasuredMonotonePerRank(t *testing.T) {
	m := BuildMeasured(sampleInput())
	last := map[int]float64{}
	for _, iv := range m.Intervals {
		if iv.Start < last[iv.Rank] {
			t.Fatalf("rank %d interval starts at %g before previous end %g", iv.Rank, iv.Start, last[iv.Rank])
		}
		if iv.End < iv.Start {
			t.Fatalf("negative interval: %+v", iv)
		}
		last[iv.Rank] = iv.End
	}
	// Engine intervals start at the lifecycle offset, not zero.
	if m.Intervals[0].Start != 0.01 {
		t.Errorf("first engine interval at %g, want offset 0.01", m.Intervals[0].Start)
	}
}

func TestBuildMeasuredNoSteps(t *testing.T) {
	in := sampleInput()
	in.Steps = nil
	m := BuildMeasured(in)
	// One pseudo-step: three intervals per rank.
	if len(m.Intervals) != 6 {
		t.Fatalf("%d intervals, want 6", len(m.Intervals))
	}
	if m.Metrics.Ranks != 2 {
		t.Errorf("ranks = %d", m.Metrics.Ranks)
	}
}

func TestBuildMeasuredZeroClass(t *testing.T) {
	in := sampleInput()
	// A class the telemetry never saw: weights fall back to uniform, and
	// the rank totals still distribute fully.
	for i := range in.Steps {
		in.Steps[i].Collective = 0
	}
	m := BuildMeasured(in)
	var coll float64
	for _, iv := range m.Intervals {
		if iv.Rank == 1 && iv.Phase == PhaseCollective {
			coll += iv.End - iv.Start
		}
	}
	if math.Abs(coll-1.0) > 1e-12 {
		t.Errorf("rank 1 collective sum = %g, want 1.0", coll)
	}
}

func TestBuildMeasuredSerial(t *testing.T) {
	in := MeasuredInput{
		Serial: []SerialStep{
			{Step: 1, Phases: []PhaseSpan{{"A", 0.1}, {"B", 0.2}, {"E", 0.3}}},
			{Step: 2, Phases: []PhaseSpan{{"A", 0.1}, {"B", 0.0}, {"E", 0.25}}},
		},
		Lifecycle: []LifecycleSpan{{Name: "run", Seconds: 0.95}},
	}
	m := BuildMeasured(in)
	// Zero-duration phases are dropped: 3 + 2 intervals.
	if len(m.Intervals) != 5 {
		t.Fatalf("%d intervals, want 5", len(m.Intervals))
	}
	for _, iv := range m.Intervals {
		if iv.Rank != 0 || iv.State != Compute {
			t.Fatalf("serial interval not rank-0 compute: %+v", iv)
		}
	}
	end := m.Intervals[len(m.Intervals)-1].End
	if math.Abs(end-0.95) > 1e-12 {
		t.Errorf("serial timeline ends at %g, want 0.95", end)
	}
	if m.Metrics.Ranks != 1 {
		t.Errorf("ranks = %d", m.Metrics.Ranks)
	}
}

func TestBuildMeasuredLifecycleTrack(t *testing.T) {
	m := BuildMeasured(sampleInput())
	if len(m.Lifecycle) != 3 {
		t.Fatalf("%d lifecycle intervals", len(m.Lifecycle))
	}
	if m.Lifecycle[0].Start != 0 || m.Lifecycle[1].Phase != "run" {
		t.Errorf("lifecycle layout wrong: %+v", m.Lifecycle)
	}
	if math.Abs(m.Lifecycle[2].End-(0.01+4.75+0.002)) > 1e-12 {
		t.Errorf("lifecycle end = %g", m.Lifecycle[2].End)
	}
}

// Equal inputs must re-encode to byte-identical documents — the trace
// determinism invariant the API extends to cache hits and restarts.
func TestDocumentDeterministic(t *testing.T) {
	meta := map[string]string{"hash": "abc", "scenario": "sod"}
	pop := &POPComparison{Measured: BuildMeasured(sampleInput()).Metrics.Report()}
	a, err := json.Marshal(BuildMeasured(sampleInput()).Document(meta, pop))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(BuildMeasured(sampleInput()).Document(map[string]string{"scenario": "sod", "hash": "abc"}, pop))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("documents differ:\n%s\n%s", a, b)
	}
}

func TestDocumentSchema(t *testing.T) {
	doc := BuildMeasured(sampleInput()).Document(map[string]string{"hash": "x"}, nil)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var procs, threads, slices int
	lastTS := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs++
			case "thread_name":
				threads++
			default:
				t.Errorf("unknown metadata event %q", ev.Name)
			}
			if ev.Args["name"] == "" {
				t.Errorf("metadata event without args.name: %+v", ev)
			}
		case "X":
			slices++
			if ev.TS < 0 || ev.Dur <= 0 {
				t.Errorf("bad slice timing: %+v", ev)
			}
			if ev.Cat != CatPhase && ev.Cat != CatLifecycle {
				t.Errorf("unknown category %q", ev.Cat)
			}
			key := [2]int{ev.PID, ev.TID}
			if ev.TS < lastTS[key] {
				t.Errorf("track %v timestamps not monotone: %g after %g", key, ev.TS, lastTS[key])
			}
			lastTS[key] = ev.TS
		default:
			t.Errorf("unknown ph %q", ev.Ph)
		}
	}
	if procs != 2 {
		t.Errorf("%d process_name events, want 2", procs)
	}
	if threads != 3 { // lifecycle row + 2 ranks
		t.Errorf("%d thread_name events, want 3", threads)
	}
	if slices == 0 {
		t.Error("no slices")
	}
}

func TestInstrumentedSliceSkipsZeroDur(t *testing.T) {
	var p Perfetto
	p.Slice(CatPhase, PhaseCompute, 1, 0, 0, 0, nil)
	if len(p.Events()) != 0 {
		t.Fatalf("zero-duration slice emitted: %+v", p.Events())
	}
	p.Slice(CatPhase, PhaseCompute, 1, 0, 0.5, 0.25, nil)
	ev := p.Events()[0]
	if ev.TS != 0.5e6 || ev.Dur != 0.25e6 {
		t.Fatalf("microsecond conversion wrong: %+v", ev)
	}
}

func TestMetricsReport(t *testing.T) {
	m := BuildMeasured(sampleInput()).Metrics
	r := m.Report()
	if r.Ranks != m.Ranks || r.LoadBalance != m.LoadBalance || r.Runtime != m.Runtime {
		t.Fatalf("report mismatch: %+v vs %+v", r, m)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"ranks"`, `"loadBalance"`, `"commEfficiency"`, `"parallelEfficiency"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Errorf("report JSON missing %s: %s", key, b)
		}
	}
}

// Interval-slice package functions must agree with the Tracer methods they
// back.
func TestIntervalFunctionsMatchTracer(t *testing.T) {
	tr := New()
	tr.Record(0, "A", Compute, 0, 2)
	tr.Record(1, "A", Compute, 0, 1)
	tr.Record(1, "A", MPI, 1, 2)
	ivs := tr.Intervals()
	if AnalyzeIntervals(ivs) != tr.Analyze() {
		t.Error("AnalyzeIntervals != Tracer.Analyze")
	}
	if TimelineOf(ivs, 20) != tr.Timeline(20) {
		t.Error("TimelineOf != Tracer.Timeline")
	}
	a, b := PhaseBreakdownOf(ivs), tr.PhaseBreakdown()
	if len(a) != len(b) || a[0] != b[0] {
		t.Error("PhaseBreakdownOf != Tracer.PhaseBreakdown")
	}
}
