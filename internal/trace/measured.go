// Measured-trace assembly: reconstructing per-rank interval timelines from
// the artifacts a completed job persists — the per-rank phase totals of the
// report's timing record, the per-step class sums of the telemetry track,
// and the job-lifecycle spans stored next to the report. The inputs are
// pure data (no engine state), so the reconstruction is a deterministic
// function of persisted bytes: cache-hit resubmissions and post-restart
// fetches rebuild identical traces.
package trace

// Frozen phase names of reassembled parallel-engine slices — one per
// RankTiming class. The telemetry package freezes the same spellings for
// its sample keys; the two namespaces (flight-recorder wire format, trace
// slice names) are deliberately kept separate but must agree.
const (
	PhaseCompute    = "compute"
	PhaseHalo       = "halo"
	PhaseCollective = "collective"
)

// RankTotals is one rank's accumulated phase-class seconds over a whole
// run (mirrors the report timing record's per-rank row; trace cannot
// import core — core imports trace).
type RankTotals struct {
	Rank    int
	Compute float64
	Halo    float64
	// Collective covers the global reductions (h-iteration consensus, dt,
	// conservation sums).
	Collective float64
	// Seconds is the rank's total clock at run end.
	Seconds float64
}

// StepClassSeconds is one step's class sums over all ranks, from the
// telemetry track's per-step phase samples. They shape how each rank's
// totals distribute over steps: the totals carry the truth, the steps
// carry the rhythm.
type StepClassSeconds struct {
	Step       int
	Compute    float64
	Halo       float64
	Collective float64
}

// PhaseSpan is one named phase duration of a serial step, in recorded
// order.
type PhaseSpan struct {
	Phase   string
	Seconds float64
}

// SerialStep is one serial-engine step's wall-clock phase record.
type SerialStep struct {
	Step   int
	Phases []PhaseSpan
}

// LifecycleSpan is one server lifecycle phase (queue-wait, restore, run,
// checkpoint, verify) in recorded order.
type LifecycleSpan struct {
	Name    string
	Seconds float64
}

// MeasuredInput carries the persisted artifacts a trace reassembles from.
// Exactly one engine record should be present: Ranks (+ optional Steps)
// for a parallel run, Serial for a serial one.
type MeasuredInput struct {
	// Ranks are the parallel engine's per-rank phase totals.
	Ranks []RankTotals
	// Steps are the per-step class sums; empty collapses the run to one
	// aggregate step per rank.
	Steps []StepClassSeconds
	// Serial is the serial engine's per-step phase record.
	Serial []SerialStep
	// Lifecycle is the job's server-side span record in recorded order.
	Lifecycle []LifecycleSpan
	// Offset places the engine timeline at the point the lifecycle
	// reached its run phase, so engine slices nest under the lifecycle
	// track's run span in a viewer.
	Offset float64
}

// Measured is a reassembled trace: engine intervals (the rows POP metrics
// and the Paraver timeline read), the lifecycle track, and the POP
// analysis of the engine intervals.
type Measured struct {
	// Intervals are the engine intervals, rank-major and time-ordered
	// within each rank.
	Intervals []Interval
	// Lifecycle lays the span record end-to-end from t=0.
	Lifecycle []Interval
	// Metrics is AnalyzeIntervals over the engine intervals.
	Metrics Metrics
}

// classWeights distributes a rank's class total over steps in proportion
// to the fleet-wide per-step class sums; a zero fleet total (a class that
// never ran) falls back to uniform weights.
func classWeights(steps []StepClassSeconds, class func(StepClassSeconds) float64) []float64 {
	w := make([]float64, len(steps))
	var total float64
	for _, s := range steps {
		total += class(s)
	}
	if total <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(steps))
		}
		return w
	}
	for i, s := range steps {
		w[i] = class(s) / total
	}
	return w
}

// BuildMeasured reassembles interval timelines from persisted artifacts.
//
// Parallel runs: each rank replays the step rhythm — for step k it
// computes, exchanges halos, then joins collectives, with durations equal
// to the rank's class totals split across steps by the fleet-wide per-step
// class weights. Per-rank, per-class interval sums therefore reproduce the
// timing record's totals exactly (up to float summation), which is the
// invariant the smoke contract checks against the persisted report.
//
// Serial runs: one rank, steps laid sequentially, each step's phases in
// recorded order, all useful computation.
func BuildMeasured(in MeasuredInput) Measured {
	var m Measured
	t := 0.0
	for _, sp := range in.Lifecycle {
		m.Lifecycle = append(m.Lifecycle, Interval{
			Rank: 0, Phase: sp.Name, State: Compute, Start: t, End: t + sp.Seconds,
		})
		t += sp.Seconds
	}

	switch {
	case len(in.Ranks) > 0:
		steps := in.Steps
		if len(steps) == 0 {
			// No per-step record: one aggregate pseudo-step.
			steps = []StepClassSeconds{{Step: 1, Compute: 1, Halo: 1, Collective: 1}}
		}
		wc := classWeights(steps, func(s StepClassSeconds) float64 { return s.Compute })
		wh := classWeights(steps, func(s StepClassSeconds) float64 { return s.Halo })
		ws := classWeights(steps, func(s StepClassSeconds) float64 { return s.Collective })
		for _, rk := range in.Ranks {
			t := in.Offset
			for k := range steps {
				for _, part := range []struct {
					phase string
					state State
					dur   float64
				}{
					{PhaseCompute, Compute, rk.Compute * wc[k]},
					{PhaseHalo, MPI, rk.Halo * wh[k]},
					{PhaseCollective, Sync, rk.Collective * ws[k]},
				} {
					if part.dur <= 0 {
						continue
					}
					m.Intervals = append(m.Intervals, Interval{
						Rank: rk.Rank, Phase: part.phase, State: part.state,
						Start: t, End: t + part.dur,
					})
					t += part.dur
				}
			}
		}
	case len(in.Serial) > 0:
		t := in.Offset
		for _, st := range in.Serial {
			for _, ph := range st.Phases {
				if ph.Seconds <= 0 {
					continue
				}
				m.Intervals = append(m.Intervals, Interval{
					Rank: 0, Phase: ph.Phase, State: Compute,
					Start: t, End: t + ph.Seconds,
				})
				t += ph.Seconds
			}
		}
	}
	m.Metrics = AnalyzeIntervals(m.Intervals)
	return m
}
