package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndIntervals(t *testing.T) {
	tr := New()
	tr.Record(0, "A", Compute, 0, 1)
	tr.Record(1, "A", MPI, 2, 1) // reversed: must normalize
	ivs := tr.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("%d intervals", len(ivs))
	}
	if ivs[1].Start != 1 || ivs[1].End != 2 {
		t.Fatalf("reversed interval not normalized: %+v", ivs[1])
	}
	tr.Reset()
	if len(tr.Intervals()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(r, "E", Compute, float64(i), float64(i+1))
			}
		}(r)
	}
	wg.Wait()
	if got := len(tr.Intervals()); got != 800 {
		t.Fatalf("%d intervals, want 800", got)
	}
}

func TestAnalyzePerfectBalance(t *testing.T) {
	tr := New()
	for r := 0; r < 4; r++ {
		tr.Record(r, "E", Compute, 0, 10)
	}
	m := tr.Analyze()
	if m.Ranks != 4 {
		t.Fatalf("ranks = %d", m.Ranks)
	}
	if math.Abs(m.LoadBalance-1) > 1e-12 {
		t.Errorf("LoadBalance = %g, want 1", m.LoadBalance)
	}
	if math.Abs(m.CommEfficiency-1) > 1e-12 {
		t.Errorf("CommEfficiency = %g, want 1", m.CommEfficiency)
	}
	if math.Abs(m.ParallelEfficiency-1) > 1e-12 {
		t.Errorf("ParallelEfficiency = %g", m.ParallelEfficiency)
	}
}

func TestAnalyzeImbalance(t *testing.T) {
	// Rank 0 computes 10s, rank 1 computes 5s then waits in MPI.
	tr := New()
	tr.Record(0, "E", Compute, 0, 10)
	tr.Record(1, "E", Compute, 0, 5)
	tr.Record(1, "E", MPI, 5, 10)
	m := tr.Analyze()
	// avg useful 7.5, max useful 10 -> LB 0.75.
	if math.Abs(m.LoadBalance-0.75) > 1e-12 {
		t.Errorf("LoadBalance = %g, want 0.75", m.LoadBalance)
	}
	if math.Abs(m.CommEfficiency-1) > 1e-12 {
		t.Errorf("CommEfficiency = %g, want 1 (critical path all compute)", m.CommEfficiency)
	}
	if m.TotalMPI != 5 {
		t.Errorf("TotalMPI = %g", m.TotalMPI)
	}
}

func TestAnalyzeCommBound(t *testing.T) {
	tr := New()
	tr.Record(0, "E", Compute, 0, 2)
	tr.Record(0, "E", MPI, 2, 10)
	m := tr.Analyze()
	if math.Abs(m.CommEfficiency-0.2) > 1e-12 {
		t.Errorf("CommEfficiency = %g, want 0.2", m.CommEfficiency)
	}
}

func TestComputationScalabilityAndGlobalEff(t *testing.T) {
	ref := Metrics{Ranks: 1, AvgUseful: 100, ParallelEfficiency: 1}
	// Scaled run: 4 ranks doing 30 each = 120 total (20% redundant work).
	cur := Metrics{Ranks: 4, AvgUseful: 30, ParallelEfficiency: 0.9}
	cs := ComputationScalability(ref, cur)
	if math.Abs(cs-100.0/120.0) > 1e-12 {
		t.Errorf("ComputationScalability = %g", cs)
	}
	ge := GlobalEfficiency(ref, cur)
	if math.Abs(ge-0.9*100.0/120.0) > 1e-12 {
		t.Errorf("GlobalEfficiency = %g", ge)
	}
	if ComputationScalability(ref, Metrics{}) != 0 {
		t.Error("zero current work should give 0")
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New()
	tr.Record(0, "A", Compute, 0, 2)
	tr.Record(0, "E", MPI, 2, 4)
	tr.Record(1, "A", Compute, 0, 1)
	tr.Record(1, "A", Idle, 1, 4)
	out := tr.Timeline(40)
	if !strings.Contains(out, "r0") || !strings.Contains(out, "r1") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no compute glyphs:\n%s", out)
	}
	if !strings.Contains(out, "M") {
		t.Errorf("no MPI glyphs:\n%s", out)
	}
	if !strings.Contains(out, ".") {
		t.Errorf("no idle glyphs:\n%s", out)
	}
	if !strings.Contains(out, "phase") {
		t.Errorf("no phase ruler:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Errorf("no legend:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tr := New()
	if out := tr.Timeline(10); !strings.Contains(out, "empty") {
		t.Errorf("empty timeline = %q", out)
	}
	tr.Record(0, "A", Compute, 0, 1)
	if out := tr.Timeline(0); !strings.Contains(out, "empty") {
		t.Errorf("zero-width timeline = %q", out)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	tr := New()
	tr.Record(0, "A", Compute, 0, 3)
	tr.Record(1, "A", Compute, 0, 2)
	tr.Record(0, "I", MPI, 3, 5)
	tr.Record(0, "", Sync, 5, 6)
	stats := tr.PhaseBreakdown()
	if len(stats) != 3 {
		t.Fatalf("%d phases", len(stats))
	}
	// Sorted by phase label; "(untagged)" < "A" < "I".
	if stats[0].Phase != "(untagged)" || stats[1].Phase != "A" || stats[2].Phase != "I" {
		t.Fatalf("order = %v %v %v", stats[0].Phase, stats[1].Phase, stats[2].Phase)
	}
	if stats[1].Compute != 5 {
		t.Errorf("phase A compute = %g, want 5", stats[1].Compute)
	}
	if stats[2].MPI != 2 {
		t.Errorf("phase I MPI = %g", stats[2].MPI)
	}
	if stats[0].Other != 1 {
		t.Errorf("untagged other = %g", stats[0].Other)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Compute, MPI, Sync, ForkJoin, Idle, State(99)} {
		if s.String() == "" {
			t.Errorf("empty name for state %d", int(s))
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	m := New().Analyze()
	if m.Ranks != 0 || m.Runtime != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}
