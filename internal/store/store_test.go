package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is an adjustable test clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func put(t *testing.T, s *Store, hash string, size int) []byte {
	t.Helper()
	payload := bytes.Repeat([]byte(hash[:1]), size)
	if err := s.Put(Meta{Hash: hash, Particles: size, Steps: 1}, payload); err != nil {
		t.Fatalf("put %s: %v", hash, err)
	}
	return payload
}

// objPath is the sharded on-disk location of an object file.
func objPath(dir, hash string) string {
	return filepath.Join(dir, "objects", hash[:2], hash+".sph")
}

// diskBytes sums the object files actually on disk.
func diskBytes(t *testing.T, dir string) int64 {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.sph"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := put(t, s, "aaaa", 100)

	m, ok := s.Get("aaaa")
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if m.Size != 100 || m.Particles != 100 {
		t.Fatalf("meta %+v", m)
	}
	got, _, err := s.ReadObject("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload round trip mismatch")
	}
	if _, ok := s.Get("bbbb"); ok {
		t.Fatal("phantom entry")
	}
}

// TestReopenServesPriorEntries: the persistence contract — a new Store over
// the same directory serves everything a previous instance stored.
func TestReopenServesPriorEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := put(t, s1, "aaaa", 256)

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, m, err := s2.ReadObject("aaaa")
	if err != nil {
		t.Fatalf("reopened store lost the entry: %v", err)
	}
	if !bytes.Equal(got, payload) || m.Particles != 256 {
		t.Fatal("reopened entry does not match what was stored")
	}
	if q := s2.Quarantined(); q != 0 {
		t.Fatalf("clean reopen quarantined %d objects", q)
	}
}

// TestTTLExpiry: entries idle past the TTL disappear — lazily on access and
// wholesale on Sweep and reopen.
func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	clock := newClock()
	s, err := Open(dir, Options{TTL: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 10)
	put(t, s, "bbbb", 10)

	// Keep bbbb warm past aaaa's expiry.
	clock.advance(45 * time.Minute)
	if _, ok := s.Get("bbbb"); !ok {
		t.Fatal("bbbb should be live")
	}
	clock.advance(30 * time.Minute) // aaaa idle 75m, bbbb idle 30m

	if _, ok := s.Get("aaaa"); ok {
		t.Fatal("aaaa should have expired")
	}
	if _, ok := s.Get("bbbb"); !ok {
		t.Fatal("bbbb was recently used and must survive")
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s.Len())
	}
	if _, err := os.Stat(objPath(dir, "aaaa")); !os.IsNotExist(err) {
		t.Fatal("expired object file still on disk")
	}

	// Sweep expires without traffic.
	clock.advance(2 * time.Hour)
	s.Sweep()
	if s.Len() != 0 {
		t.Fatalf("sweep left %d entries", s.Len())
	}

	// Reopen applies the TTL too.
	put(t, s, "cccc", 10)
	clock.advance(2 * time.Hour)
	s2, err := Open(dir, Options{TTL: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("reopen kept %d expired entries", s2.Len())
	}
}

// TestLRUSizeEviction: the size cap evicts least-recently-used entries, and
// the on-disk object total never exceeds MaxBytes after any Put.
func TestLRUSizeEviction(t *testing.T) {
	dir := t.TempDir()
	clock := newClock()
	s, err := Open(dir, Options{MaxBytes: 250, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	for i, hash := range []string{"aaaa", "bbbb", "cccc"} {
		put(t, s, hash, 100)
		clock.advance(time.Second)
		if got := diskBytes(t, dir); got > 250 {
			t.Fatalf("after put %d disk holds %d bytes > cap 250", i, got)
		}
	}
	// aaaa (oldest) must have been evicted to fit cccc.
	if _, ok := s.Get("aaaa"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.Get("bbbb"); !ok {
		t.Fatal("bbbb evicted prematurely")
	}

	// Touch bbbb, then insert dddd: cccc is now the LRU and must go.
	clock.advance(time.Second)
	if _, ok := s.Get("bbbb"); !ok {
		t.Fatal("bbbb missing")
	}
	clock.advance(time.Second)
	put(t, s, "dddd", 100)
	if _, ok := s.Get("cccc"); ok {
		t.Fatal("recently-touched bbbb was evicted instead of cccc")
	}
	if _, ok := s.Get("bbbb"); !ok {
		t.Fatal("bbbb lost after touch")
	}
	if got := diskBytes(t, dir); got > 250 {
		t.Fatalf("disk holds %d bytes > cap", got)
	}

	// An oversized snapshot is never retained.
	put(t, s, "eeee", 300)
	if _, ok := s.Get("eeee"); ok {
		t.Fatal("entry larger than the whole budget was retained")
	}
	if got := diskBytes(t, dir); got > 250 {
		t.Fatalf("disk holds %d bytes > cap after oversized put", got)
	}
}

// TestCorruptEntryQuarantinedOnReopen: flipping bytes in a stored object
// must not be served; reopen detects the CRC mismatch and moves the file to
// quarantine.
func TestCorruptEntryQuarantinedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s1, "aaaa", 64)
	put(t, s1, "bbbb", 64)

	// Corrupt aaaa on disk behind the store's back.
	path := objPath(dir, "aaaa")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over a corrupt object must not fail: %v", err)
	}
	if _, ok := s2.Get("aaaa"); ok {
		t.Fatal("corrupt entry still indexed after reopen")
	}
	if _, ok := s2.Get("bbbb"); !ok {
		t.Fatal("intact entry lost during quarantine")
	}
	if q := s2.Quarantined(); q != 1 {
		t.Fatalf("quarantined %d objects, want 1", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "aaaa.sph")); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt object left in objects/")
	}
}

// TestCorruptionDetectedOnRead: corruption appearing while the store is
// open is caught by the read-path CRC check.
func TestCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 64)
	path := objPath(dir, "aaaa")
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadObject("aaaa"); err == nil {
		t.Fatal("read of a corrupt object succeeded")
	}
	if _, ok := s.Get("aaaa"); ok {
		t.Fatal("corrupt entry still indexed after failed read")
	}
	if s.Quarantined() != 1 {
		t.Fatal("corrupt object not quarantined")
	}
}

// TestUnindexedObjectQuarantined: stray files in objects/ (e.g. from a
// crashed writer with a clobbered index) are moved aside at reopen.
func TestUnindexedObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s1, "aaaa", 16)
	if err := os.WriteFile(filepath.Join(dir, "objects", "stray.sph"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s2.Len())
	}
	if s2.Quarantined() != 1 {
		t.Fatalf("quarantined %d, want 1 (the stray)", s2.Quarantined())
	}
}

// TestCorruptIndexRecovered: a mangled index.json degrades to an empty
// store with everything quarantined, never an error.
func TestCorruptIndexRecovered(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s1, "aaaa", 16)
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over corrupt index: %v", err)
	}
	if s2.Len() != 0 {
		t.Fatalf("recovered store holds %d entries, want 0", s2.Len())
	}
	if s2.Quarantined() != 1 {
		t.Fatalf("quarantined %d, want 1", s2.Quarantined())
	}
}

// TestPutReplacesExisting: re-putting a hash replaces bytes and accounting.
func TestPutReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	put(t, s, "aaaa", 40)
	if got := s.TotalBytes(); got != 40 {
		t.Fatalf("total %d after replacement, want 40", got)
	}
	b, _, err := s.ReadObject("aaaa")
	if err != nil || len(b) != 40 {
		t.Fatalf("replacement read len=%d err=%v", len(b), err)
	}
}

func TestManyEntriesEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	clock := newClock()
	s, err := Open(dir, Options{MaxBytes: 500, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("h%03d", i), 100)
		clock.advance(time.Second)
	}
	// Only the 5 newest fit.
	for i := 0; i < 5; i++ {
		if _, ok := s.Get(fmt.Sprintf("h%03d", i)); ok {
			t.Fatalf("old entry h%03d survived", i)
		}
	}
	for i := 5; i < 10; i++ {
		if _, ok := s.Get(fmt.Sprintf("h%03d", i)); !ok {
			t.Fatalf("new entry h%03d evicted", i)
		}
	}
	if diskBytes(t, dir) > 500 {
		t.Fatal("disk over budget")
	}
}

func TestReportPersistsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	report := []byte(`{"scenario":"sod","pass":true,"l1Density":0.042}`)
	if err := s.PutReport("aaaa", report); err != nil {
		t.Fatal(err)
	}
	got, ok := s.ReadReport("aaaa")
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("ReadReport = %q ok=%v, want the stored bytes", got, ok)
	}

	// Reopen: the report must come back byte-identical.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.ReadReport("aaaa")
	if !ok || !bytes.Equal(got, report) {
		t.Fatalf("after reopen ReadReport = %q ok=%v, want identical bytes", got, ok)
	}

	// PutReport for an unknown entry is an error.
	if err := s2.PutReport("nope", report); err == nil {
		t.Error("PutReport accepted an unknown entry")
	}
}

func TestReportEvictedWithEntryAndCorruptReportDropped(t *testing.T) {
	clock := newClock()
	dir := t.TempDir()
	s, err := Open(dir, Options{TTL: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	if err := s.PutReport("aaaa", []byte(`{"pass":true}`)); err != nil {
		t.Fatal(err)
	}
	// TTL eviction removes the report file with the entry.
	clock.advance(2 * time.Hour)
	s.Sweep()
	if _, err := os.Stat(filepath.Join(dir, "reports", "aaaa.json")); !os.IsNotExist(err) {
		t.Errorf("report file survives entry eviction: %v", err)
	}
	if _, ok := s.ReadReport("aaaa"); ok {
		t.Error("evicted entry still serves a report")
	}

	// A tampered report fails its CRC and is dropped, not served.
	put(t, s, "bbbb", 100)
	if err := s.PutReport("bbbb", []byte(`{"pass":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reports", "bbbb.json"), []byte(`{"pass":false}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, ok := s.ReadReport("bbbb"); ok {
		t.Errorf("tampered report served: %q", b)
	}
	// The snapshot entry itself is unaffected.
	if _, ok := s.Get("bbbb"); !ok {
		t.Error("entry lost after report corruption")
	}
}

func TestStaleReportRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 50)
	if err := s.PutReport("aaaa", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	// Lose the object: reopening drops the entry and its stale report.
	if err := os.Remove(objPath(dir, "aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "reports", "aaaa.json")); !os.IsNotExist(err) {
		t.Errorf("stale report survives reopen: %v", err)
	}
}

// TestFlatLayoutMigratesToShards: a store directory written before object
// sharding (objects/<hash>.sph) opens cleanly — every object moves into its
// shard directory (objects/ab/<hash>.sph), the unchanged index format still
// vouches for it, and the entries serve as if nothing happened.
func TestFlatLayoutMigratesToShards(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{}
	for _, hash := range []string{"aaaa", "bbbb", "abcd"} {
		payloads[hash] = put(t, s1, hash, 64)
	}
	if err := s1.PutReport("aaaa", []byte(`{"pass":true}`)); err != nil {
		t.Fatal(err)
	}

	// Reconstruct the pre-sharding flat layout: move every object back to
	// objects/<hash>.sph and drop the shard directories, leaving index.json
	// exactly as a flat-era store would have written it.
	for hash := range payloads {
		if err := os.Rename(objPath(dir, hash), filepath.Join(dir, "objects", hash+".sph")); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, "objects", hash[:2])); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over flat layout: %v", err)
	}
	if s2.Len() != 3 || s2.Quarantined() != 0 {
		t.Fatalf("migrated store: %d entries, %d quarantined; want 3, 0", s2.Len(), s2.Quarantined())
	}
	for hash, want := range payloads {
		got, _, err := s2.ReadObject(hash)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("entry %s after migration: err=%v, bytes equal=%v", hash, err, bytes.Equal(got, want))
		}
		if _, err := os.Stat(objPath(dir, hash)); err != nil {
			t.Fatalf("object %s not in its shard directory: %v", hash, err)
		}
		if _, err := os.Stat(filepath.Join(dir, "objects", hash+".sph")); !os.IsNotExist(err) {
			t.Fatalf("flat object file %s left behind: %v", hash, err)
		}
	}
	if b, ok := s2.ReadReport("aaaa"); !ok || !bytes.Equal(b, []byte(`{"pass":true}`)) {
		t.Fatalf("report lost across migration: %q ok=%v", b, ok)
	}
}

func TestStatsCounters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	if err := s.PutReport("aaaa", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	s.Get("aaaa")                                         // hit
	s.Get("nope")                                         // miss
	s.Get("aaaa")                                         // hit
	if _, _, err := s.OpenObject("missing"); err == nil { // miss
		t.Fatal("OpenObject for a missing entry succeeded")
	}
	// Has is a bookkeeping check: no effect on the counters.
	if !s.Has("aaaa") || s.Has("nope") {
		t.Error("Has misreports entry liveness")
	}
	st := s.Stats()
	// Bytes is the full on-disk footprint: the 100-byte object plus the
	// 2-byte report attachment.
	if st.Entries != 1 || st.Bytes != 102 || st.Reports != 1 {
		t.Errorf("stats %+v, want 1 entry / 102 bytes / 1 report", st)
	}
	if st.ObjectBytes != 100 || st.ReportBytes != 2 || st.TelemetryBytes != 0 || st.ProfileBytes != 0 {
		t.Errorf("stats %+v, want byte breakdown 100/2/0/0", st)
	}
	if st.Hits != 2 || st.Misses != 2 || st.HitRate != 0.5 {
		t.Errorf("stats %+v, want hits=2 misses=2 hitRate=0.5", st)
	}
	if st.Quarantined != 0 {
		t.Errorf("stats %+v, want no quarantined objects", st)
	}
}

// TestTelemetryAndProfileAttachments: the new attachment kinds share the
// report contract — byte-identical across restarts, evicted with the entry,
// corrupt files dropped rather than served.
func TestTelemetryAndProfileAttachments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 64)

	track := []byte(`{"status":"ok","samples":[{"step":1}]}`)
	profile := []byte{0x1f, 0x8b, 0x08, 0x00, 0x01, 0x02, 0x03}
	if err := s.PutTelemetry("aaaa", track); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProfile("aaaa", profile); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTelemetry("missing", track); err == nil {
		t.Fatal("PutTelemetry for unknown entry succeeded")
	}

	if got, ok := s.ReadTelemetry("aaaa"); !ok || !bytes.Equal(got, track) {
		t.Fatalf("telemetry round trip: ok=%v", ok)
	}
	if got, ok := s.ReadProfile("aaaa"); !ok || !bytes.Equal(got, profile) {
		t.Fatalf("profile round trip: ok=%v", ok)
	}
	st := s.Stats()
	if st.Telemetry != 1 || st.Profiles != 1 {
		t.Fatalf("stats counted telemetry=%d profiles=%d", st.Telemetry, st.Profiles)
	}

	// Byte identity across a restart.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.ReadTelemetry("aaaa"); !ok || !bytes.Equal(got, track) {
		t.Fatal("telemetry not byte-identical across reopen")
	}
	if got, ok := s2.ReadProfile("aaaa"); !ok || !bytes.Equal(got, profile) {
		t.Fatal("profile not byte-identical across reopen")
	}

	// A corrupt telemetry file is dropped, not served.
	tp := filepath.Join(dir, "telemetry", "aaaa.json")
	if err := os.WriteFile(tp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.ReadTelemetry("aaaa"); ok {
		t.Fatal("corrupt telemetry track served")
	}
	if _, err := os.Stat(tp); !os.IsNotExist(err) {
		t.Fatal("corrupt telemetry track left on disk")
	}

	// Stale attachment files (no entry) are swept on open.
	if err := os.WriteFile(filepath.Join(dir, "telemetry", "zzzz.json"), track, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "telemetry", "zzzz.json")); !os.IsNotExist(err) {
		t.Fatal("stale telemetry file survived reopen")
	}
}

// diskBytesAll sums every byte the store holds on disk: objects plus
// report, telemetry, and profile attachments (quarantine excluded — those
// are outside the live budget by design).
func diskBytesAll(t *testing.T, dir string) int64 {
	t.Helper()
	total := diskBytes(t, dir)
	for _, glob := range []string{
		filepath.Join(dir, "reports", "*.json"),
		filepath.Join(dir, "telemetry", "*.json"),
		filepath.Join(dir, "profiles", "*.pprof"),
	} {
		names, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			fi, err := os.Stat(n)
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
	}
	return total
}

// TestCapIncludesAttachmentBytes: the MaxBytes cap governs the full on-disk
// footprint. Attachment bytes used to be invisible to the accounting, so a
// store full of fat telemetry tracks could blow far past its configured
// budget; now attaching data triggers the same eviction pass a Put does,
// and the on-disk total (objects + attachments) never exceeds the cap.
func TestCapIncludesAttachmentBytes(t *testing.T) {
	dir := t.TempDir()
	clock := newClock()
	s, err := Open(dir, Options{MaxBytes: 300, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	clock.advance(time.Second)
	put(t, s, "bbbb", 100)
	if got := diskBytesAll(t, dir); got > 300 {
		t.Fatalf("on-disk total %d over the 300-byte cap before attachments", got)
	}
	// A 150-byte telemetry track on bbbb pushes the true footprint to 350;
	// the LRU entry (aaaa) must be evicted to get back under the cap.
	if err := s.PutTelemetry("bbbb", bytes.Repeat([]byte("t"), 150)); err != nil {
		t.Fatal(err)
	}
	if got := diskBytesAll(t, dir); got > 300 {
		t.Fatalf("on-disk total %d over the 300-byte cap after attaching telemetry", got)
	}
	if s.Has("aaaa") {
		t.Error("LRU entry aaaa survived an over-budget attachment")
	}
	if !s.Has("bbbb") {
		t.Error("recently-used entry bbbb evicted instead of the LRU one")
	}
	if got, want := s.TotalBytes(), diskBytesAll(t, dir); got != want {
		t.Errorf("tracked total %d != on-disk total %d", got, want)
	}
}

// TestTotalBytesTracksAttachmentsAcrossReopen: the accounting starts
// truthful on Open — attachment bytes recorded in the index count from the
// first moment, and a vanished attachment file is reconciled away.
func TestTotalBytesTracksAttachmentsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	if err := s.PutReport("aaaa", bytes.Repeat([]byte("r"), 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTelemetry("aaaa", bytes.Repeat([]byte("t"), 60)); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBytes(); got != 200 {
		t.Fatalf("TotalBytes = %d, want 200 (100 object + 40 report + 60 telemetry)", got)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.TotalBytes(); got != 200 {
		t.Errorf("TotalBytes after reopen = %d, want 200", got)
	}

	// Delete the telemetry file behind the store's back: the next Open must
	// reconcile the accounting back down instead of trusting the index.
	if err := os.Remove(filepath.Join(dir, "telemetry", "aaaa.json")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.TotalBytes(); got != 140 {
		t.Errorf("TotalBytes after losing telemetry file = %d, want 140", got)
	}
	if _, ok := s3.ReadTelemetry("aaaa"); ok {
		t.Error("vanished telemetry file still served")
	}
}

// TestPutOverwriteDropsStaleAttachments: overwriting an entry replaces its
// Meta wholesale, so the old attachments — which describe the replaced
// snapshot — must be deleted and un-counted, not leaked on disk.
func TestPutOverwriteDropsStaleAttachments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 100)
	if err := s.PutReport("aaaa", bytes.Repeat([]byte("r"), 30)); err != nil {
		t.Fatal(err)
	}
	put(t, s, "aaaa", 50) // overwrite

	if got := s.TotalBytes(); got != 50 {
		t.Errorf("TotalBytes after overwrite = %d, want 50", got)
	}
	if _, ok := s.ReadReport("aaaa"); ok {
		t.Error("stale report served after its entry was overwritten")
	}
	if _, err := os.Stat(filepath.Join(dir, "reports", "aaaa.json")); !os.IsNotExist(err) {
		t.Errorf("stale report file left on disk: %v", err)
	}
	if got, want := s.TotalBytes(), diskBytesAll(t, dir); got != want {
		t.Errorf("tracked total %d != on-disk total %d", got, want)
	}
}

// TestReportHashes: the analytics enumeration path — sorted, restricted to
// entries that actually carry a report, and free of metric side effects.
func TestReportHashes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "cccc", 10)
	put(t, s, "aaaa", 10)
	put(t, s, "bbbb", 10)
	for _, h := range []string{"cccc", "aaaa"} {
		if err := s.PutReport(h, []byte(`{"pass":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	got := s.ReportHashes()
	if len(got) != 2 || got[0] != "aaaa" || got[1] != "cccc" {
		t.Errorf("ReportHashes = %v, want [aaaa cccc]", got)
	}
	after := s.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Error("ReportHashes perturbed the hit/miss counters")
	}
}
