// Package store is the persistent, content-addressed result store of the
// simulation service: completed snapshots keyed by canonical spec hash
// (scenario.Spec.Hash), written atomically (temp file + rename), read back
// with whole-file CRC verification, and bounded by a combined TTL +
// size-capped LRU eviction policy. A server restart reopens the same
// directory and serves prior results as cache hits; entries whose bytes no
// longer match their recorded CRC are quarantined, not trusted and not
// fatal — the store degrades to recomputation, never to corrupt data.
//
// Layout under the root directory:
//
//	index.json             entry metadata (rewritten atomically on mutation)
//	objects/ab/abcd….sph   snapshot payloads (part binary checkpoint format),
//	                       sharded by the first two hash characters so no
//	                       single directory accumulates tens of thousands of
//	                       entries; a pre-sharding flat layout
//	                       (objects/abcd….sph) migrates transparently on Open
//	reports/<hash>.json    verification reports attached to entries, served
//	                       byte-identically across restarts
//	telemetry/<hash>.json  step-telemetry tracks (downsampled flight-recorder
//	                       series), same byte-identity contract as reports
//	profiles/<hash>.pprof  on-demand CPU profiles captured against an entry
//	quarantine/            corrupt or unindexed objects moved aside on detection
package store

import (
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta describes one stored result. The identifying fields (Particles,
// Steps, SimTime, Checksum) are supplied by the caller at Put time; the
// bookkeeping fields (Size, CRC, CreatedAt, LastUsed) are owned by the store.
type Meta struct {
	// Hash is the canonical spec hash the entry is addressed by.
	Hash string `json:"hash"`
	// Particles is the snapshot's particle count.
	Particles int `json:"particles"`
	// Steps and SimTime record how far the producing job ran.
	Steps   int     `json:"steps"`
	SimTime float64 `json:"simTime"`
	// Checksum is the part payload CRC-64 fingerprint of the particle
	// state (part.Set.Checksum), used by callers to compare results.
	Checksum uint64 `json:"checksum"`
	// Size is the object file size in bytes.
	Size int64 `json:"size"`
	// CRC is the CRC-64/ECMA of the whole object file; reads verify
	// against it and quarantine on mismatch.
	CRC uint64 `json:"crc"`
	// CreatedAt and LastUsed are unix seconds; LastUsed drives both the
	// TTL (idle expiry) and the LRU eviction order.
	CreatedAt int64 `json:"createdAt"`
	LastUsed  int64 `json:"lastUsed"`
	// ReportSize and ReportCRC track the entry's verification report file
	// (reports/<hash>.json), attached by PutReport; zero means none. The
	// report is served byte-for-byte and evicted with its entry, and its
	// size counts against MaxBytes like every other byte the store owns.
	ReportSize int64  `json:"reportSize,omitempty"`
	ReportCRC  uint64 `json:"reportCRC,omitempty"`
	// TelemetrySize and TelemetryCRC track the entry's step-telemetry track
	// (telemetry/<hash>.json), attached by PutTelemetry — same byte-identity
	// and eviction contract as the report.
	TelemetrySize int64  `json:"telemetrySize,omitempty"`
	TelemetryCRC  uint64 `json:"telemetryCRC,omitempty"`
	// ProfileSize and ProfileCRC track the entry's most recent CPU profile
	// (profiles/<hash>.pprof), attached by PutProfile.
	ProfileSize int64  `json:"profileSize,omitempty"`
	ProfileCRC  uint64 `json:"profileCRC,omitempty"`
}

// Options bounds the store.
type Options struct {
	// TTL evicts entries idle (not Put or read) for longer than this;
	// 0 disables expiry.
	TTL time.Duration
	// MaxBytes caps the total bytes on disk — objects plus report,
	// telemetry, and profile attachments; least-recently-used entries are
	// evicted to stay under it. 0 disables the cap.
	MaxBytes int64
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Store is a disk-backed content-addressed result store. All methods are
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	entries map[string]*Meta // guarded by mu
	total   int64            // sum of entry bytes: objects plus attachments; guarded by mu
	// quarantined counts objects moved aside by the last Open or by a
	// failed read since.
	quarantined int
	// hits and misses count result lookups (Get and OpenObject) since
	// this instance opened; the /storez endpoint derives the hit rate.
	hits, misses uint64
	// puts and evictions count writes and policy removals (TTL + LRU)
	// since this instance opened, for the serving layer's telemetry.
	puts, evictions uint64
}

type indexFile struct {
	Version int              `json:"version"`
	Entries map[string]*Meta `json:"entries"`
}

// Open loads (or initializes) a store rooted at dir. Every indexed object is
// re-verified against its recorded CRC: corrupt or missing-from-index files
// are moved to the quarantine directory and dropped, then the TTL and size
// policies are applied — so a freshly opened store is always consistent and
// within budget.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Store{dir: dir, opts: opts, entries: map[string]*Meta{}}
	if err := os.MkdirAll(s.objectsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", s.objectsDir(), err)
	}

	// Transparent migration of the pre-sharding flat layout: objects used
	// to live directly at objects/<hash>.sph. Move each into its shard
	// directory before verification — the index records no paths, so it
	// stays byte-compatible across the migration. A file that cannot be
	// migrated is quarantined, never left invisible at the flat path (the
	// unindexed-object sweep only scans shard directories, so an orphan
	// there would silently shadow a droppable entry forever).
	if names, err := filepath.Glob(filepath.Join(s.objectsDir(), "*.sph")); err == nil {
		for _, path := range names {
			hash := fileHash(path)
			dst := s.objectPath(hash)
			if dst == path {
				continue
			}
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				s.quarantineFileLocked(path, hash)
				continue
			}
			if err := os.Rename(path, dst); err != nil {
				s.quarantineFileLocked(path, hash)
			}
		}
	}

	idx, err := readIndex(s.indexPath())
	if err != nil {
		// A corrupt index is recoverable: quarantine every object (their
		// provenance is unverifiable) and start empty.
		idx = &indexFile{Entries: map[string]*Meta{}}
	}

	for hash, m := range idx.Entries {
		path := s.objectPath(hash)
		crc, size, err := fileCRC(path)
		if err != nil || crc != m.CRC || size != m.Size {
			if err == nil {
				s.quarantineLocked(hash)
			}
			continue
		}
		m.Hash = hash
		// Attachments stay CRC-verified lazily on read; here just reconcile
		// the recorded sizes against the files on disk so the byte
		// accounting backing the MaxBytes cap starts truthful.
		reconcile := func(apath string, asize *int64, acrc *uint64) {
			if *asize == 0 {
				return
			}
			fi, err := os.Stat(apath)
			if err != nil || fi.Size() != *asize {
				_ = os.Remove(apath)
				*asize, *acrc = 0, 0
			}
		}
		reconcile(s.reportPath(hash), &m.ReportSize, &m.ReportCRC)
		reconcile(s.telemetryPath(hash), &m.TelemetrySize, &m.TelemetryCRC)
		reconcile(s.profilePath(hash), &m.ProfileSize, &m.ProfileCRC)
		s.entries[hash] = m
		s.total += entryBytes(m)
	}

	// Objects on disk that the index does not vouch for are quarantined.
	if names, err := filepath.Glob(filepath.Join(s.objectsDir(), "*", "*.sph")); err == nil {
		for _, path := range names {
			hash := fileHash(path)
			if _, ok := s.entries[hash]; !ok {
				s.quarantineLocked(hash)
			}
		}
	}

	// Report, telemetry, and profile files whose entry is gone (object
	// lost, entry dropped above) are stale; remove them so the attachment
	// directories track the index.
	for _, sweep := range []struct{ glob, ext string }{
		{filepath.Join(s.reportsDir(), "*.json"), ".json"},
		{filepath.Join(s.telemetryDir(), "*.json"), ".json"},
		{filepath.Join(s.profilesDir(), "*.pprof"), ".pprof"},
	} {
		names, err := filepath.Glob(sweep.glob)
		if err != nil {
			continue
		}
		for _, path := range names {
			base := filepath.Base(path)
			hash := base[:len(base)-len(sweep.ext)]
			if _, ok := s.entries[hash]; !ok {
				_ = os.Remove(path)
			}
		}
	}

	s.evictLocked(s.opts.Now())
	if err := s.saveIndexLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) indexPath() string  { return filepath.Join(s.dir, "index.json") }
func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }

// objectPath shards the objects directory by the first two hash characters
// (objects/ab/abcd….sph), so entry counts in the tens of thousands never
// pile into one directory.
func (s *Store) objectPath(h string) string {
	if len(h) < 2 {
		return filepath.Join(s.objectsDir(), h+".sph")
	}
	return filepath.Join(s.objectsDir(), h[:2], h+".sph")
}
func (s *Store) reportsDir() string { return filepath.Join(s.dir, "reports") }
func (s *Store) reportPath(h string) string {
	return filepath.Join(s.reportsDir(), h+".json")
}
func (s *Store) telemetryDir() string { return filepath.Join(s.dir, "telemetry") }
func (s *Store) telemetryPath(h string) string {
	return filepath.Join(s.telemetryDir(), h+".json")
}
func (s *Store) profilesDir() string { return filepath.Join(s.dir, "profiles") }
func (s *Store) profilePath(h string) string {
	return filepath.Join(s.profilesDir(), h+".pprof")
}

// fileHash recovers the hash from an object path ("<hash>.sph").
func fileHash(path string) string {
	base := filepath.Base(path)
	return base[:len(base)-len(".sph")]
}

func readIndex(path string) (*indexFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var idx indexFile
	if err := json.Unmarshal(b, &idx); err != nil {
		return nil, fmt.Errorf("store: corrupt index %s: %w", path, err)
	}
	if idx.Entries == nil {
		idx.Entries = map[string]*Meta{}
	}
	return &idx, nil
}

// saveIndexLocked rewrites index.json atomically.
func (s *Store) saveIndexLocked() error {
	b, err := json.MarshalIndent(indexFile{Version: 1, Entries: s.entries}, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.indexPath())
}

// fileCRC returns the CRC-64/ECMA and size of the file's bytes.
func fileCRC(path string) (uint64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc64.New(crcTable)
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum64(), n, nil
}

// quarantineLocked moves an object aside instead of deleting it, so corrupt
// data remains inspectable but is never served.
func (s *Store) quarantineLocked(hash string) {
	s.quarantineFileLocked(s.objectPath(hash), hash)
}

// quarantineFileLocked quarantines an object file at an explicit path (the
// canonical sharded location, or a flat-layout file that failed migration).
func (s *Store) quarantineFileLocked(path, hash string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		_ = os.Remove(path)
		return
	}
	dst := filepath.Join(qdir, hash+".sph")
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path)
	}
	// A quarantined object always accompanies a dropped entry; its
	// attachments are meaningless without the snapshot they describe.
	_ = os.Remove(s.reportPath(hash))
	_ = os.Remove(s.telemetryPath(hash))
	_ = os.Remove(s.profilePath(hash))
	s.quarantined++
}

// entryBytes is everything the entry holds on disk: the snapshot object
// plus its report, telemetry, and profile attachments. This is the unit the
// MaxBytes cap and the total accounting work in.
func entryBytes(m *Meta) int64 {
	return m.Size + m.ReportSize + m.TelemetrySize + m.ProfileSize
}

// removeLocked evicts an entry and deletes its object and attachment files.
func (s *Store) removeLocked(hash string) {
	if m, ok := s.entries[hash]; ok {
		s.total -= entryBytes(m)
		delete(s.entries, hash)
	}
	_ = os.Remove(s.objectPath(hash))
	_ = os.Remove(s.reportPath(hash))
	_ = os.Remove(s.telemetryPath(hash))
	_ = os.Remove(s.profilePath(hash))
}

// evictLocked applies the TTL then the size cap: expired entries go first,
// then least-recently-used ones until the total fits MaxBytes.
func (s *Store) evictLocked(now time.Time) {
	if s.opts.TTL > 0 {
		cutoff := now.Add(-s.opts.TTL).Unix()
		for hash, m := range s.entries {
			if m.LastUsed < cutoff {
				s.removeLocked(hash)
				s.evictions++
			}
		}
	}
	if s.opts.MaxBytes <= 0 || s.total <= s.opts.MaxBytes {
		return
	}
	type cand struct {
		hash     string
		lastUsed int64
	}
	order := make([]cand, 0, len(s.entries))
	for hash, m := range s.entries {
		order = append(order, cand{hash, m.LastUsed})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].lastUsed != order[j].lastUsed {
			return order[i].lastUsed < order[j].lastUsed
		}
		return order[i].hash < order[j].hash
	})
	for _, c := range order {
		if s.total <= s.opts.MaxBytes {
			break
		}
		s.removeLocked(c.hash)
		s.evictions++
	}
}

// Put stores snapshot under meta.Hash, replacing any existing entry. The
// write is atomic (temp file in the objects directory, then rename), the
// index is persisted, and the eviction policy runs afterwards — so the
// on-disk total never exceeds MaxBytes once Put returns. Note that under a
// tight cap the just-written entry itself may be evicted (a snapshot larger
// than the whole budget is never retained).
func (s *Store) Put(meta Meta, snapshot []byte) error {
	if meta.Hash == "" {
		return fmt.Errorf("store: Put with empty hash")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	path := s.objectPath(meta.Hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", filepath.Dir(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, snapshot, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}

	now := s.opts.Now().Unix()
	if old, ok := s.entries[meta.Hash]; ok {
		// An overwrite replaces the Meta wholesale: the old attachments no
		// longer describe the new snapshot, so their files must go too —
		// leaving them on disk would leak bytes invisible to the accounting.
		s.total -= entryBytes(old)
		if old.ReportSize > 0 {
			_ = os.Remove(s.reportPath(meta.Hash))
		}
		if old.TelemetrySize > 0 {
			_ = os.Remove(s.telemetryPath(meta.Hash))
		}
		if old.ProfileSize > 0 {
			_ = os.Remove(s.profilePath(meta.Hash))
		}
	}
	// Attachment bookkeeping is owned by the store: a fresh Put starts with
	// none regardless of what the caller's Meta claims.
	meta.ReportSize, meta.ReportCRC = 0, 0
	meta.TelemetrySize, meta.TelemetryCRC = 0, 0
	meta.ProfileSize, meta.ProfileCRC = 0, 0
	meta.Size = int64(len(snapshot))
	meta.CRC = crc64.Checksum(snapshot, crcTable)
	meta.CreatedAt = now
	meta.LastUsed = now
	s.entries[meta.Hash] = &meta
	s.total += meta.Size
	s.puts++

	s.evictLocked(s.opts.Now())
	return s.saveIndexLocked()
}

// Has reports whether hash is currently live. Unlike Get it neither counts
// toward the hit/miss metrics nor refreshes the entry's LRU position — it
// is for internal bookkeeping (e.g. the job server checking whether a
// just-Put entry survived its own eviction pass), not for serving traffic.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[hash]
	return ok
}

// Get returns the entry's metadata and marks it used (refreshing its LRU and
// TTL position). An expired entry is evicted and reported as a miss.
func (s *Store) Get(hash string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.touchLocked(hash)
	if !ok {
		s.misses++
		return Meta{}, false
	}
	s.hits++
	return *m, true
}

// touchLocked looks up hash, applying TTL expiry and refreshing LastUsed.
// The refresh is in-memory only — rewriting the whole index on every read
// would put O(entries) disk I/O on the hot lookup path; the new timestamp
// is persisted by the next mutation (Put, eviction, Sweep). Across a crash
// the LRU/TTL order is therefore approximate, never the served bytes.
func (s *Store) touchLocked(hash string) (*Meta, bool) {
	m, ok := s.entries[hash]
	if !ok {
		return nil, false
	}
	now := s.opts.Now()
	if s.opts.TTL > 0 && m.LastUsed < now.Add(-s.opts.TTL).Unix() {
		s.removeLocked(hash)
		_ = s.saveIndexLocked()
		return nil, false
	}
	m.LastUsed = now.Unix()
	return m, true
}

// OpenObject returns the entry's object file positioned at the start, after
// verifying the file bytes against the recorded CRC — callers stream the
// snapshot straight from disk. A corrupt object is quarantined and reported
// as an error; the caller should treat it as a miss and recompute.
func (s *Store) OpenObject(hash string) (*os.File, Meta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.touchLocked(hash)
	if !ok {
		s.misses++
		return nil, Meta{}, fmt.Errorf("store: no entry %s", hash)
	}
	f, err := os.Open(s.objectPath(hash))
	if err != nil {
		s.misses++
		s.removeLocked(hash)
		_ = s.saveIndexLocked()
		return nil, Meta{}, fmt.Errorf("store: entry %s lost: %w", hash, err)
	}
	h := crc64.New(crcTable)
	n, err := io.Copy(h, f)
	if err != nil || h.Sum64() != m.CRC || n != m.Size {
		f.Close()
		s.misses++
		s.total -= entryBytes(m)
		delete(s.entries, hash)
		s.quarantineLocked(hash)
		_ = s.saveIndexLocked()
		return nil, Meta{}, fmt.Errorf("store: entry %s failed CRC verification, quarantined", hash)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, Meta{}, err
	}
	s.hits++
	return f, *m, nil
}

// ReadObject is OpenObject materialized: the verified snapshot bytes.
func (s *Store) ReadObject(hash string) ([]byte, Meta, error) {
	f, m, err := s.OpenObject(hash)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, Meta{}, err
	}
	return b, m, nil
}

// Sweep applies the TTL + size eviction policy now (Put and Open already do;
// Sweep lets long-lived owners expire idle entries without traffic).
func (s *Store) Sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked(s.opts.Now())
	_ = s.saveIndexLocked()
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// TotalBytes returns the tracked on-disk size of all live entries —
// snapshot objects plus their report, telemetry, and profile attachments.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// ReportHashes enumerates the hashes of every live entry that has an
// attached verification report, in sorted order. This is the analytics
// query path: it neither counts toward hit/miss metrics nor refreshes LRU
// positions — enumerating the corpus must not perturb the eviction order
// the serving traffic established.
func (s *Store) ReportHashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for hash, m := range s.entries {
		if m.ReportSize > 0 {
			out = append(out, hash)
		}
	}
	sort.Strings(out)
	return out
}

// Quarantined reports how many objects this store instance has moved to
// quarantine (at Open or on a failed read).
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// TTL exposes the configured idle expiry (0 = none); the job server reuses
// it to prune its job table in lockstep with the result store.
func (s *Store) TTL() time.Duration { return s.opts.TTL }

// putAttachment writes an attachment file atomically (temp + rename) for an
// existing entry and records its size and CRC through the provided
// accessors — the shared machinery behind PutReport, PutTelemetry, and
// PutProfile. set returns the size the slot held before, so the byte
// accounting tracks replacement as well as first attachment; the eviction
// policy runs afterwards because attachment bytes count against MaxBytes.
func (s *Store) putAttachment(hash, kind, path string, data []byte, set func(m *Meta, size int64, crc uint64) (old int64)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.entries[hash]
	if !ok {
		return fmt.Errorf("store: Put%s for unknown entry %s", kind, hash)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", filepath.Dir(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	old := set(m, int64(len(data)), crc64.Checksum(data, crcTable))
	s.total += int64(len(data)) - old
	s.evictLocked(s.opts.Now())
	return s.saveIndexLocked()
}

// readAttachment returns attachment bytes verified against the recorded
// size and CRC (fetched via get). A missing or corrupt file is dropped (its
// Meta fields zeroed via clear) and reported as absent — never served wrong.
func (s *Store) readAttachment(hash, path string, get func(m *Meta) (int64, uint64), clear func(m *Meta)) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.entries[hash]
	if !ok {
		return nil, false
	}
	size, crc := get(m)
	if size == 0 {
		return nil, false
	}
	b, err := os.ReadFile(path)
	if err != nil || int64(len(b)) != size || crc64.Checksum(b, crcTable) != crc {
		_ = os.Remove(path)
		clear(m)
		s.total -= size
		_ = s.saveIndexLocked()
		return nil, false
	}
	return b, true
}

// PutReport attaches a verification report to an existing entry. The file
// is written atomically next to the snapshot (reports/<hash>.json) with its
// CRC recorded in the entry, so ReadReport returns exactly these bytes —
// including across restarts — or nothing.
func (s *Store) PutReport(hash string, report []byte) error {
	return s.putAttachment(hash, "Report", s.reportPath(hash), report,
		func(m *Meta, size int64, crc uint64) (old int64) {
			old, m.ReportSize, m.ReportCRC = m.ReportSize, size, crc
			return old
		})
}

// ReadReport returns the entry's verification report bytes, verified
// against the recorded CRC.
func (s *Store) ReadReport(hash string) ([]byte, bool) {
	return s.readAttachment(hash, s.reportPath(hash),
		func(m *Meta) (int64, uint64) { return m.ReportSize, m.ReportCRC },
		func(m *Meta) { m.ReportSize, m.ReportCRC = 0, 0 })
}

// PutTelemetry attaches a step-telemetry track to an existing entry —
// same atomic-write, CRC-verified, byte-identical contract as PutReport.
func (s *Store) PutTelemetry(hash string, track []byte) error {
	return s.putAttachment(hash, "Telemetry", s.telemetryPath(hash), track,
		func(m *Meta, size int64, crc uint64) (old int64) {
			old, m.TelemetrySize, m.TelemetryCRC = m.TelemetrySize, size, crc
			return old
		})
}

// ReadTelemetry returns the entry's telemetry track bytes, verified against
// the recorded CRC.
func (s *Store) ReadTelemetry(hash string) ([]byte, bool) {
	return s.readAttachment(hash, s.telemetryPath(hash),
		func(m *Meta) (int64, uint64) { return m.TelemetrySize, m.TelemetryCRC },
		func(m *Meta) { m.TelemetrySize, m.TelemetryCRC = 0, 0 })
}

// PutProfile attaches a CPU profile to an existing entry; a later capture
// replaces the previous one (the profile is point-in-time evidence, not an
// accumulating log).
func (s *Store) PutProfile(hash string, profile []byte) error {
	return s.putAttachment(hash, "Profile", s.profilePath(hash), profile,
		func(m *Meta, size int64, crc uint64) (old int64) {
			old, m.ProfileSize, m.ProfileCRC = m.ProfileSize, size, crc
			return old
		})
}

// ReadProfile returns the entry's most recent CPU profile bytes, verified
// against the recorded CRC.
func (s *Store) ReadProfile(hash string) ([]byte, bool) {
	return s.readAttachment(hash, s.profilePath(hash),
		func(m *Meta) (int64, uint64) { return m.ProfileSize, m.ProfileCRC },
		func(m *Meta) { m.ProfileSize, m.ProfileCRC = 0, 0 })
}

// Stats is the /storez metrics snapshot.
type Stats struct {
	// Entries counts live entries; Bytes is their total on-disk footprint
	// (objects plus attachments — the number the MaxBytes cap governs).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// ObjectBytes, ReportBytes, TelemetryBytes, and ProfileBytes break
	// Bytes down by what the disk actually holds.
	ObjectBytes    int64 `json:"objectBytes"`
	ReportBytes    int64 `json:"reportBytes"`
	TelemetryBytes int64 `json:"telemetryBytes"`
	ProfileBytes   int64 `json:"profileBytes"`
	// Reports counts entries with an attached verification report;
	// Telemetry and Profiles count the other attachment kinds.
	Reports   int `json:"reports"`
	Telemetry int `json:"telemetry"`
	Profiles  int `json:"profiles"`
	// Hits and Misses count result lookups since this instance opened;
	// HitRate is their ratio (0 with no traffic).
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
	// Quarantined counts objects this instance moved aside as corrupt or
	// unvouched-for.
	Quarantined int `json:"quarantined"`
	// Puts and Evictions count writes and TTL/LRU policy removals since
	// this instance opened.
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the current metrics snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries:     len(s.entries),
		Bytes:       s.total,
		Hits:        s.hits,
		Misses:      s.misses,
		Quarantined: s.quarantined,
		Puts:        s.puts,
		Evictions:   s.evictions,
	}
	for _, m := range s.entries {
		st.ObjectBytes += m.Size
		if m.ReportSize > 0 {
			st.Reports++
			st.ReportBytes += m.ReportSize
		}
		if m.TelemetrySize > 0 {
			st.Telemetry++
			st.TelemetryBytes += m.TelemetrySize
		}
		if m.ProfileSize > 0 {
			st.Profiles++
			st.ProfileBytes += m.ProfileSize
		}
	}
	if total := s.hits + s.misses; total > 0 {
		st.HitRate = float64(s.hits) / float64(total)
	}
	return st
}
