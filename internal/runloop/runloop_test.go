package runloop

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/ft"
	"repro/internal/part"
)

// fakeChunk advances a counter instead of a simulation: each "step" costs
// 0.5 time units, and the particle state's first ID records the step count
// so checkpoints are distinguishable.
func fakeChunk(t *testing.T, calls *[]Base) Chunk {
	return func(ctx context.Context, ps *part.Set, base Base, steps int) (ChunkResult, error) {
		*calls = append(*calls, base)
		out := ps.Clone()
		out.ID[0] = int64(base.Step + steps)
		return ChunkResult{PS: out, Steps: steps, SimTime: 0.5 * float64(steps)}, nil
	}
}

func newSet() *part.Set {
	ps := part.New(4)
	for i := range ps.Mass {
		ps.Mass[i] = 1
		ps.H[i] = 1
	}
	return ps
}

func ck(t *testing.T) *ft.Checkpointer {
	t.Helper()
	return &ft.Checkpointer{Levels: []ft.Level{{
		Name: "local", Dir: filepath.Join(t.TempDir(), "ck"), Keep: 2,
	}}}
}

func TestRunChunksAndCheckpoints(t *testing.T) {
	var calls []Base
	c := ck(t)
	res, err := Run(Options{
		Checkpointer: c, TotalSteps: 10, ChunkSteps: 4,
	}, newSet(), fakeChunk(t, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 || res.SimTime != 5 || res.Cancelled || res.Restored {
		t.Fatalf("result %+v, want 10 steps, simTime 5", res)
	}
	want := []Base{{0, 0}, {4, 2}, {8, 4}}
	if len(calls) != len(want) {
		t.Fatalf("chunk calls %+v, want %+v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("chunk %d base %+v, want %+v", i, calls[i], want[i])
		}
	}
	// Interim checkpoints exist (the last one at step 8); no final-step
	// checkpoint is written by the loop itself.
	ps, step, simTime, err := c.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if step != 8 || simTime != 4 || ps.ID[0] != 8 {
		t.Fatalf("restored step %d simTime %g id %d, want 8 / 4 / 8", step, simTime, ps.ID[0])
	}
}

func TestRunResumesFromCheckpoint(t *testing.T) {
	var calls []Base
	c := ck(t)
	st := newSet()
	st.ID[0] = 6
	if err := c.Write(0, 6, 3, st); err != nil {
		t.Fatal(err)
	}
	var restored []int
	res, err := Run(Options{
		Checkpointer: c, Resume: true, TotalSteps: 10, ChunkSteps: 4,
		OnRestore: func(step int, simTime float64) { restored = append(restored, step) },
	}, newSet(), fakeChunk(t, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Restored || res.Start != 6 || res.Steps != 10 || res.SimTime != 5 {
		t.Fatalf("result %+v, want restored start=6 steps=10 simTime=5", res)
	}
	if len(restored) != 1 || restored[0] != 6 {
		t.Fatalf("OnRestore calls %v, want [6]", restored)
	}
	if len(calls) != 1 || calls[0] != (Base{6, 3}) {
		t.Fatalf("chunk calls %+v, want one chunk from base {6 3}", calls)
	}
}

func TestRunIgnoresOversizedCheckpointUnlessMustResume(t *testing.T) {
	c := ck(t)
	if err := c.Write(0, 50, 25, newSet()); err != nil {
		t.Fatal(err)
	}
	// Without MustResume a checkpoint beyond TotalSteps means a fresh run
	// (the server's semantics: the spec hash owns the directory, so this
	// only happens across spec changes).
	var calls []Base
	res, err := Run(Options{
		Checkpointer: c, Resume: true, TotalSteps: 10, ChunkSteps: 0,
	}, newSet(), fakeChunk(t, &calls))
	if err != nil || res.Restored || res.Steps != 10 {
		t.Fatalf("res=%+v err=%v, want fresh 10-step run", res, err)
	}
	// With MustResume it is an explicit error.
	if _, err := Run(Options{
		Checkpointer: c, Resume: true, MustResume: true, TotalSteps: 10,
	}, newSet(), fakeChunk(t, &calls)); err == nil {
		t.Fatal("oversized checkpoint accepted under MustResume")
	}
	// MustResume with no checkpoint at all is also an error.
	if _, err := Run(Options{
		Checkpointer: ck(t), Resume: true, MustResume: true, TotalSteps: 10,
	}, newSet(), fakeChunk(t, &calls)); err == nil {
		t.Fatal("missing checkpoint accepted under MustResume")
	}
}

func TestRunStopsOnCancelledChunk(t *testing.T) {
	var calls []Base
	cancelAfter := func(ctx context.Context, ps *part.Set, base Base, steps int) (ChunkResult, error) {
		calls = append(calls, base)
		if base.Step >= 4 {
			// Simulate an engine observing cancellation mid-chunk.
			return ChunkResult{PS: ps, Steps: 1, SimTime: 0.5, Cancelled: true}, nil
		}
		return ChunkResult{PS: ps, Steps: steps, SimTime: 0.5 * float64(steps)}, nil
	}
	res, err := Run(Options{TotalSteps: 12, ChunkSteps: 4}, newSet(), cancelAfter)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Steps != 5 {
		t.Fatalf("result %+v, want cancelled at 5 steps", res)
	}
}

func TestRunPropagatesChunkError(t *testing.T) {
	boom := errors.New("engine exploded")
	_, err := Run(Options{TotalSteps: 4}, newSet(),
		func(ctx context.Context, ps *part.Set, base Base, steps int) (ChunkResult, error) {
			return ChunkResult{}, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the chunk error", err)
	}
}

func TestRunObservesContextBeforeChunk(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls []Base
	res, err := Run(Options{Ctx: ctx, TotalSteps: 4}, newSet(), fakeChunk(t, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || len(calls) != 0 {
		t.Fatalf("res=%+v calls=%d, want immediate cancellation with no chunks", res, len(calls))
	}
}
