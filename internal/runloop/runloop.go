// Package runloop is the shared chunked checkpoint/resume execution loop
// of the mini-app: restore from the newest checkpoint, run the engine in
// chunks of the checkpoint interval, write a checkpoint between chunks,
// and stop cleanly at a chunk boundary on cancellation. The job server
// (internal/server) and the CLI (cmd/sphexa) both route their runs through
// it, so crash recovery, -restart, and SIGINT interruption share one code
// path regardless of which engine executes the chunk.
package runloop

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/part"
)

// Base is the global position a chunk starts from: completed steps and
// accumulated simulation time.
type Base struct {
	Step int
	Time float64
}

// ChunkResult reports one executed chunk: the (possibly re-merged)
// particle state, steps completed within the chunk, simulation time
// advanced within the chunk, and whether the chunk stopped on
// cancellation.
type ChunkResult struct {
	PS        *part.Set
	Steps     int
	SimTime   float64
	Cancelled bool
	// Timing is the chunk's per-phase modeled timing breakdown; engines
	// without a machine model (the serial backend) leave it nil.
	Timing *core.RunTiming
}

// Chunk advances the simulation by up to `steps` steps from `ps` at
// `base`. Implementations must observe ctx at step boundaries and return
// Cancelled (not an error) when interrupted; the state they return must be
// consistent — synchronized if the engine needs it — because the loop
// checkpoints it.
type Chunk func(ctx context.Context, ps *part.Set, base Base, steps int) (ChunkResult, error)

// Options configures one loop execution.
type Options struct {
	// Ctx cancels the loop cooperatively; the zero value never cancels.
	Ctx context.Context
	// Checkpointer persists state between chunks; nil disables both
	// checkpointing and resume.
	Checkpointer *ft.Checkpointer
	// Resume attempts to restore the newest checkpoint before running.
	Resume bool
	// MustResume makes a failed restore an error instead of a fresh start
	// (the CLI's -restart contract).
	MustResume bool
	// TotalSteps is the run length including any restored steps.
	TotalSteps int
	// ChunkSteps is the checkpoint interval; <= 0 runs one monolithic
	// chunk (no interim checkpoints).
	ChunkSteps int
	// OnRestore observes a successful checkpoint restore before the first
	// chunk runs.
	OnRestore func(step int, simTime float64)
	// Clock overrides the time source of the phase breakdown (tests); nil
	// means time.Now.
	Clock func() time.Time
}

// PhaseSeconds is the loop's wall-clock breakdown: time spent restoring
// the checkpoint, executing chunks, and writing interim checkpoints. It is
// the execution half of a job's lifecycle trace (internal/obs SpanSet);
// the server adds the queue-wait, verify, and persist phases around it.
type PhaseSeconds struct {
	Restore    float64 `json:"restore,omitempty"`
	Run        float64 `json:"run"`
	Checkpoint float64 `json:"checkpoint,omitempty"`
}

// Result is the loop outcome.
type Result struct {
	// PS is the final particle state (at the last completed chunk
	// boundary when cancelled).
	PS *part.Set
	// Start is the step the run began from (> 0 after a restore).
	Start int
	// Steps counts completed steps including restored ones; SimTime is
	// the matching simulation time.
	Steps   int
	SimTime float64
	// Cancelled reports a cooperative interruption; the caller decides
	// whether to checkpoint, requeue, or surface it.
	Cancelled bool
	// Restored reports that the run resumed from a checkpoint.
	Restored bool
	// Timing accumulates the chunks' per-phase timing breakdowns; nil when
	// the engine reports none. Restored steps contribute nothing (their
	// timing was spent — and recorded — by the run that checkpointed them).
	Timing *core.RunTiming
	// Phases is the loop's real wall-clock breakdown (as opposed to
	// Timing's modeled clocks): restore, chunk execution, and interim
	// checkpoint writes.
	Phases PhaseSeconds
}

// Run executes the loop: optional restore, then chunks of ChunkSteps with
// a checkpoint between consecutive chunks, until TotalSteps, cancellation,
// or an error. Interim checkpoint failures are errors (a run that cannot
// honor its durability contract must not keep computing past it).
func Run(opts Options, ps *part.Set, chunk Chunk) (Result, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	res := Result{PS: ps}

	if ck := opts.Checkpointer; ck != nil && opts.Resume {
		restoreStart := clock()
		restored, step, simTime, err := ck.Restore()
		res.Phases.Restore = clock().Sub(restoreStart).Seconds()
		switch {
		case err == nil && step > 0 && step <= opts.TotalSteps:
			res.PS, res.Start, res.Steps, res.SimTime = restored, step, step, simTime
			res.Restored = true
			if opts.OnRestore != nil {
				opts.OnRestore(step, simTime)
			}
		case opts.MustResume:
			if err == nil {
				return res, fmt.Errorf("runloop: checkpoint at step %d unusable for a %d-step run", step, opts.TotalSteps)
			}
			return res, fmt.Errorf("runloop: restore: %w", err)
		}
	}

	for res.Steps < opts.TotalSteps {
		select {
		case <-ctx.Done():
			res.Cancelled = true
			return res, nil
		default:
		}
		n := opts.TotalSteps - res.Steps
		if opts.ChunkSteps > 0 && n > opts.ChunkSteps {
			n = opts.ChunkSteps
		}
		chunkStart := clock()
		cr, err := chunk(ctx, res.PS, Base{Step: res.Steps, Time: res.SimTime}, n)
		res.Phases.Run += clock().Sub(chunkStart).Seconds()
		if err != nil && !cr.Cancelled {
			return res, err
		}
		if cr.PS != nil {
			res.PS = cr.PS
		}
		res.Steps += cr.Steps
		res.SimTime += cr.SimTime
		if cr.Timing != nil {
			if res.Timing == nil {
				res.Timing = &core.RunTiming{}
			}
			res.Timing.Merge(cr.Timing)
		}
		if cr.Cancelled {
			res.Cancelled = true
			return res, nil
		}
		if ck := opts.Checkpointer; ck != nil && res.Steps < opts.TotalSteps {
			ckStart := clock()
			err := ck.Write(0, res.Steps, res.SimTime, res.PS)
			res.Phases.Checkpoint += clock().Sub(ckStart).Seconds()
			if err != nil {
				return res, fmt.Errorf("runloop: checkpoint at step %d: %w", res.Steps, err)
			}
		}
	}
	return res, nil
}
