package verify

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/conserve"
	"repro/internal/part"
	"repro/internal/vec"
)

// uniformSolution is a trivial reference: constant density/pressure, zero
// velocity, valid everywhere.
type uniformSolution struct{ rho, p float64 }

func (u uniformSolution) Name() string { return "uniform" }
func (u uniformSolution) Eval(pos vec.V3, t float64) (analytic.State, bool) {
	return analytic.State{Rho: u.rho, P: u.p}, true
}

// snapshot builds n particles exactly matching the uniform reference.
func snapshot(n int) *part.Set {
	ps := part.New(n)
	for i := 0; i < n; i++ {
		ps.ID[i] = int64(i)
		ps.Pos[i] = vec.V3{X: float64(i)}
		ps.Mass[i] = 1
		ps.H[i] = 1
		ps.Rho[i] = 1
		ps.P[i] = 1
		ps.U[i] = 1
	}
	return ps
}

// TestTrimmedNormsRejectOutliers is the robust-estimation property: a few
// particles smeared across a discontinuity (injected outliers) dominate
// the plain norms but are discarded by the trimmed variants.
func TestTrimmedNormsRejectOutliers(t *testing.T) {
	const n = 200
	ps := snapshot(n)
	// Contaminate 4 of 200 particles (2% < the 5% trim allowance) with a
	// gross density error.
	for i := 0; i < 4; i++ {
		ps.Rho[i*50] = 11 // error of 10 against reference 1
	}
	rep := Evaluate(Input{
		Scenario:   "uniform",
		PS:         ps,
		Solution:   uniformSolution{rho: 1, p: 1},
		Thresholds: Thresholds{L1Density: 0.01},
	})
	if rep.Compared != n {
		t.Fatalf("compared %d, want %d", rep.Compared, n)
	}
	var density Norms
	for _, f := range rep.Fields {
		if f.Field == "density" {
			density = f.Norms
		}
	}
	// Plain norms see the contamination: L1 = 4*10/200 = 0.2, Linf = 10.
	if math.Abs(density.L1-0.2) > 1e-12 {
		t.Errorf("plain L1 = %g, want 0.2", density.L1)
	}
	if math.Abs(density.LInf-10) > 1e-12 {
		t.Errorf("plain Linf = %g, want 10", density.LInf)
	}
	// Trimmed norms (q=0.95 default: worst 10 of 200 dropped) are clean.
	if density.Trimmed != 10 {
		t.Errorf("trimmed %d samples, want 10", density.Trimmed)
	}
	if density.TrimmedL1 != 0 || density.TrimmedLInf != 0 {
		t.Errorf("trimmed norms = %g / %g, want 0 (outliers discarded)", density.TrimmedL1, density.TrimmedLInf)
	}
	// The acceptance check binds on the trimmed L1, so it passes despite
	// the contaminated plain norms.
	if !rep.Pass {
		t.Errorf("report failed: %+v", rep.Checks)
	}

	// With contamination beyond the trim allowance the check fails.
	ps2 := snapshot(n)
	for i := 0; i < 30; i++ { // 15% > 5% allowance
		ps2.Rho[i] = 11
	}
	rep2 := Evaluate(Input{
		Scenario:   "uniform",
		PS:         ps2,
		Solution:   uniformSolution{rho: 1, p: 1},
		Thresholds: Thresholds{L1Density: 0.01},
	})
	if rep2.Pass {
		t.Error("report passed despite contamination beyond the trim quantile")
	}
}

func TestConservationOnlyReport(t *testing.T) {
	ps := snapshot(10)
	initial := conserve.Measure(ps, nil)
	// Perturb the energy: double one particle's internal energy.
	ps.U[0] = 2
	rep := Evaluate(Input{
		Scenario:    "cube",
		PS:          ps,
		Thresholds:  Thresholds{MaxEnergyDrift: 1e-6},
		Initial:     initial,
		HaveInitial: true,
	})
	if rep.Reference != "" || rep.Fields != nil {
		t.Errorf("reference-free report carries field errors: %+v", rep)
	}
	if rep.Conservation.Energy <= 0 {
		t.Errorf("energy drift = %g, want > 0", rep.Conservation.Energy)
	}
	if rep.Pass {
		t.Error("report passed despite energy drift beyond threshold")
	}
	// No thresholds at all: trivially passing, drift still reported.
	rep2 := Evaluate(Input{Scenario: "cube", PS: ps, Initial: initial, HaveInitial: true})
	if !rep2.Pass || len(rep2.Checks) != 0 {
		t.Errorf("thresholdless report: pass=%v checks=%v", rep2.Pass, rep2.Checks)
	}
}

// invalidEverywhere is a reference whose validity domain excludes every
// point (e.g. a solution overrun by boundary effects).
type invalidEverywhere struct{}

func (invalidEverywhere) Name() string { return "invalid" }
func (invalidEverywhere) Eval(pos vec.V3, t float64) (analytic.State, bool) {
	return analytic.State{}, false
}

// TestUnscorableReferenceFailsLoudly: registered norm gates that cannot be
// evaluated — the reference failed to construct, or no particle lies in
// its validity domain — must fail the report, not silently pass on drift.
func TestUnscorableReferenceFailsLoudly(t *testing.T) {
	ps := snapshot(10)

	rep := Evaluate(Input{
		Scenario:   "sod",
		PS:         ps,
		Solution:   invalidEverywhere{},
		Thresholds: Thresholds{L1Density: 0.1},
	})
	if rep.Compared != 0 {
		t.Fatalf("compared %d, want 0", rep.Compared)
	}
	if rep.Pass {
		t.Error("report passed with zero compared particles against a registered norm gate")
	}
	found := false
	for _, c := range rep.Checks {
		if c.Name == "reference-coverage" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("no failing reference-coverage check: %+v", rep.Checks)
	}

	rep2 := Evaluate(Input{
		Scenario:     "sod",
		PS:           ps,
		ReferenceErr: errors.New("vacuum states"),
		Thresholds:   Thresholds{L1Density: 0.1},
	})
	if rep2.Pass || rep2.ReferenceError == "" {
		t.Errorf("report with failed reference construction: pass=%v err=%q", rep2.Pass, rep2.ReferenceError)
	}

	// Without any norm bound the sentinels do not apply (sedov-style
	// conservation-only acceptance stays meaningful at compared=0).
	rep3 := Evaluate(Input{Scenario: "sedov", PS: ps, Solution: invalidEverywhere{}})
	if !rep3.Pass || len(rep3.Checks) != 0 {
		t.Errorf("norm-boundless report: pass=%v checks=%v", rep3.Pass, rep3.Checks)
	}
}

// TestReportJSONRollup pins the JSON keys the job-list rollup reads
// (reference, pass, l1Density).
func TestReportJSONRollup(t *testing.T) {
	ps := snapshot(20)
	for i := 0; i < 20; i++ {
		ps.Rho[i] = 1.1 // uniform 10% error; survives trimming
	}
	rep := Evaluate(Input{
		Scenario:   "uniform",
		PS:         ps,
		Solution:   uniformSolution{rho: 1, p: 1},
		Thresholds: Thresholds{L1Density: 0.05},
	})
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var roll struct {
		Reference string  `json:"reference"`
		Pass      bool    `json:"pass"`
		L1Density float64 `json:"l1Density"`
	}
	if err := json.Unmarshal(b, &roll); err != nil {
		t.Fatal(err)
	}
	if roll.Reference != "uniform" || roll.Pass || math.Abs(roll.L1Density-0.1) > 1e-9 {
		t.Errorf("rollup = %+v, want reference=uniform pass=false l1Density=0.1", roll)
	}
}

// TestPerFieldTrimQuantiles pins the quantile resolution order (per-field
// override > TrimQuantile > default) and that Evaluate actually trims each
// field at its own quantile.
func TestPerFieldTrimQuantiles(t *testing.T) {
	thr := Thresholds{TrimQuantile: 0.8, TrimQuantileVelocity: 0.5}
	if q := thr.Quantile("density"); q != 0.8 {
		t.Fatalf("density quantile %g, want the shared 0.8", q)
	}
	if q := thr.Quantile("velocity"); q != 0.5 {
		t.Fatalf("velocity quantile %g, want the per-field 0.5", q)
	}
	if q := (Thresholds{}).Quantile("pressure"); q != DefaultTrimQuantile {
		t.Fatalf("unset quantile %g, want default %g", q, DefaultTrimQuantile)
	}

	// 10 particles against a uniform reference: each field trims at its
	// own quantile, visible in the per-field Trimmed counts.
	ps := part.New(10)
	ps.NLocal = 10
	for i := 0; i < 10; i++ {
		ps.Pos[i] = vec.V3{X: float64(i)}
		ps.Rho[i] = 1
		ps.P[i] = 1
	}
	rep := Evaluate(Input{
		Scenario: "uniform-test",
		PS:       ps,
		Solution: uniformSolution{rho: 1, p: 1},
		Thresholds: Thresholds{
			TrimQuantile:         1, // keep everything...
			TrimQuantileVelocity: 0.7,
		},
	})
	byField := map[string]Norms{}
	for _, f := range rep.Fields {
		byField[f.Field] = f.Norms
	}
	if byField["density"].Trimmed != 0 || byField["pressure"].Trimmed != 0 {
		t.Fatalf("q=1 fields trimmed %d/%d samples, want 0",
			byField["density"].Trimmed, byField["pressure"].Trimmed)
	}
	if byField["velocity"].Trimmed != 3 {
		t.Fatalf("velocity trimmed %d of 10 at q=0.7, want 3", byField["velocity"].Trimmed)
	}
}

// TestSanitizeMakesNaNReportsMarshalable: a NaN-blown run must still
// produce a JSON-marshalable report (json.Marshal rejects NaN/Inf, and a
// lost report would hide exactly the run the fleet analytics most needs),
// with the non-finite values clamped to the ±1e300 sentinel and the failed
// checks preserved.
func TestSanitizeMakesNaNReportsMarshalable(t *testing.T) {
	rep := &Report{
		Scenario:  "sod",
		L1Density: math.NaN(),
		Fields: []FieldError{{Field: "density", Norms: Norms{
			L1: math.Inf(1), TrimmedL1: math.NaN(), TrimmedLInf: math.Inf(-1),
		}}},
		Plateau:      &PlateauEstimate{RelError: math.NaN()},
		Conservation: conserve.Drift{Energy: math.Inf(1)},
		Checks:       []Check{{Name: "l1-density", Value: math.NaN(), Limit: 0.1, Pass: false}},
	}
	rep.Sanitize()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("sanitized report still unmarshalable: %v", err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.L1Density != 1e300 || back.Fields[0].Norms.TrimmedLInf != -1e300 {
		t.Errorf("sentinels not applied: l1=%v trimmedLInf=%v", back.L1Density, back.Fields[0].Norms.TrimmedLInf)
	}
	if back.Checks[0].Pass {
		t.Error("failed check flipped to pass by sanitization")
	}
	// Idempotent: a second pass changes nothing.
	before := string(raw)
	rep.Sanitize()
	raw2, _ := json.Marshal(rep)
	if string(raw2) != before {
		t.Error("Sanitize is not idempotent")
	}
}
