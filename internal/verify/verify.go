// Package verify turns a final particle snapshot plus an analytic
// reference solution (internal/analytic) into a structured, quantitative
// verification Report: L1/L2/L∞ error norms for density, velocity, and
// pressure — in plain and trimmed variants — post-shock plateau estimates,
// conservation drift, and pass/fail against per-scenario acceptance
// thresholds registered in internal/scenario.
//
// The trimmed norms follow the robust-estimation argument of Coretto &
// Hennig (arXiv:1406.0808): a handful of particles smeared across a
// discontinuity are contaminating outliers for the error distribution, so
// each norm is also evaluated with the worst (1-q) quantile of per-particle
// errors discarded — the thresholds bind on the trimmed L1, which tracks
// the bulk solution quality rather than the interface width.
package verify

import (
	"math"
	"sort"

	"repro/internal/analytic"
	"repro/internal/conserve"
	"repro/internal/eos"
	"repro/internal/part"
)

// DefaultTrimQuantile is the kept fraction of per-particle errors for the
// trimmed norms when a scenario does not override it.
const DefaultTrimQuantile = 0.95

// Thresholds are the per-scenario acceptance bounds. A zero field is
// unchecked; norm bounds bind on the trimmed L1 of the corresponding field.
type Thresholds struct {
	// TrimQuantile is the kept fraction for trimmed norms (0 selects
	// DefaultTrimQuantile). The per-field variants override it for one
	// field each — the spec's verification section (scenario.VerifySpec)
	// threads them through the canonical hash, so differently-trimmed
	// reports never share a stored result.
	TrimQuantile         float64 `json:"trimQuantile,omitempty"`
	TrimQuantileDensity  float64 `json:"trimQuantileDensity,omitempty"`
	TrimQuantileVelocity float64 `json:"trimQuantileVelocity,omitempty"`
	TrimQuantilePressure float64 `json:"trimQuantilePressure,omitempty"`
	// L1Density / L1Velocity / L1Pressure bound the trimmed relative L1
	// error of the field against the analytic reference.
	L1Density  float64 `json:"l1Density,omitempty"`
	L1Velocity float64 `json:"l1Velocity,omitempty"`
	L1Pressure float64 `json:"l1Pressure,omitempty"`
	// MaxEnergyDrift / MaxMomentumDrift bound the conservation drift over
	// the run (conserve.Drift components).
	MaxEnergyDrift   float64 `json:"maxEnergyDrift,omitempty"`
	MaxMomentumDrift float64 `json:"maxMomentumDrift,omitempty"`
}

// Quantile resolves the kept fraction for one field's trimmed norms:
// the per-field override, then TrimQuantile, then DefaultTrimQuantile.
func (t Thresholds) Quantile(field string) float64 {
	q := t.TrimQuantile
	switch field {
	case "density":
		if t.TrimQuantileDensity > 0 {
			q = t.TrimQuantileDensity
		}
	case "velocity":
		if t.TrimQuantileVelocity > 0 {
			q = t.TrimQuantileVelocity
		}
	case "pressure":
		if t.TrimQuantilePressure > 0 {
			q = t.TrimQuantilePressure
		}
	}
	if q <= 0 || q > 1 {
		q = DefaultTrimQuantile
	}
	return q
}

// Norms are the error norms of one field against the reference, normalized
// by the largest reference magnitude over the compared particles. The
// trimmed variants discard the worst (1-TrimQuantile) fraction of
// per-particle errors before evaluating.
type Norms struct {
	L1   float64 `json:"l1"`
	L2   float64 `json:"l2"`
	LInf float64 `json:"lInf"`

	TrimmedL1   float64 `json:"trimmedL1"`
	TrimmedL2   float64 `json:"trimmedL2"`
	TrimmedLInf float64 `json:"trimmedLInf"`

	// Scale is the normalization (max |reference| over compared samples).
	Scale float64 `json:"scale"`
	// Samples is the compared particle count; Trimmed is how many the
	// trimmed variants discarded.
	Samples int `json:"samples"`
	Trimmed int `json:"trimmed"`
}

// FieldError is the named norm set of one compared field.
type FieldError struct {
	Field string `json:"field"` // "density", "velocity", "pressure"
	Norms
}

// PlateauEstimate compares the measured mean density over a solution's
// plateau region with the analytic value.
type PlateauEstimate struct {
	Analytic  float64 `json:"analytic"`
	Measured  float64 `json:"measured"`
	RelError  float64 `json:"relError"`
	Particles int     `json:"particles"`
}

// Check is one evaluated acceptance criterion; the convention is
// Pass = Value <= Limit. The sentinel checks "reference-construction" and
// "reference-coverage" (Value 1, Limit 0, always failing) mark a report
// whose registered norm gates could not be evaluated at all — a scenario
// that promises an analytic acceptance bar must not silently degrade to
// conservation-only and still read as passing.
type Check struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	Pass  bool    `json:"pass"`
}

// Report is the structured verification result of one completed run.
type Report struct {
	Scenario string `json:"scenario"`
	// Reference names the analytic solution; empty when the scenario has
	// none (the report then carries only conservation drift).
	Reference string `json:"reference,omitempty"`
	// ReferenceError records a failed reference construction — the run is
	// then unscored and the report fails its "reference-construction"
	// check.
	ReferenceError string  `json:"referenceError,omitempty"`
	SimTime        float64 `json:"simTime"`
	// Particles is the snapshot size; Compared counts those inside the
	// reference's validity domain.
	Particles int `json:"particles"`
	Compared  int `json:"compared,omitempty"`

	// L1Density is the headline number (trimmed relative L1 density
	// error), duplicated at the top level for job-list rollups.
	L1Density float64 `json:"l1Density,omitempty"`

	Fields  []FieldError     `json:"fields,omitempty"`
	Plateau *PlateauEstimate `json:"plateau,omitempty"`

	Conservation conserve.Drift `json:"conservation"`

	Thresholds Thresholds `json:"thresholds"`
	Checks     []Check    `json:"checks,omitempty"`
	// Pass is true when every registered acceptance check passed (and
	// trivially true when the scenario registers none).
	Pass bool `json:"pass"`
}

// Input is everything Evaluate needs.
type Input struct {
	// Scenario names the workload (for the report header).
	Scenario string
	// PS is the final snapshot (owned particles are compared).
	PS *part.Set
	// SimTime is the simulated physical time of the snapshot.
	SimTime float64
	// Solution is the analytic reference; nil means none (conservation
	// drift only).
	Solution analytic.Solution
	// ReferenceErr reports that the scenario registers a reference but
	// constructing it failed; the report then fails loudly instead of
	// silently passing on drift alone.
	ReferenceErr error
	// EOS, when non-nil, recomputes particle pressures from (rho, u)
	// instead of trusting the possibly half-step-stale P field.
	EOS eos.EOS
	// Thresholds are the registered acceptance bounds.
	Thresholds Thresholds
	// Initial is the conserved-quantity snapshot at t=0; HaveInitial
	// gates the drift computation.
	Initial     conserve.State
	HaveInitial bool
}

// Evaluate scores the snapshot against the reference and thresholds.
func Evaluate(in Input) *Report {
	rep := &Report{
		Scenario:   in.Scenario,
		SimTime:    in.SimTime,
		Particles:  in.PS.NLocal,
		Thresholds: in.Thresholds,
	}
	if in.HaveInitial {
		rep.Conservation = conserve.Compare(in.Initial, conserve.Measure(in.PS, nil))
	}
	if in.ReferenceErr != nil {
		rep.ReferenceError = in.ReferenceErr.Error()
	}

	if in.Solution != nil {
		rep.Reference = in.Solution.Name()
		evalFields(rep, in)
		if ps, ok := in.Solution.(analytic.PlateauSolution); ok {
			if pl, ok := ps.Plateau(in.SimTime); ok {
				rep.Plateau = measurePlateau(in.PS, pl)
			}
		}
	}

	rep.Checks = buildChecks(rep, in)
	rep.Pass = true
	for _, c := range rep.Checks {
		if !c.Pass {
			rep.Pass = false
		}
	}
	rep.Sanitize()
	return rep
}

// sentinel replaces non-finite float64s in a sanitized report. JSON cannot
// encode NaN or ±Inf — one NaN anywhere in a report makes json.Marshal fail
// and silently loses the whole report, which is exactly backwards: a
// NaN-blown run is the report the fleet analytics most needs to see. The
// sentinel's absurd magnitude keeps such a run an unambiguous gross outlier
// downstream (checks have already been evaluated, and NaN fails every
// threshold comparison, so Pass is unaffected).
const sentinel = 1e300

func sanitizeFloat(v float64) float64 {
	switch {
	case math.IsNaN(v), math.IsInf(v, 1):
		return sentinel
	case math.IsInf(v, -1):
		return -sentinel
	default:
		return v
	}
}

// Sanitize clamps every non-finite float in the report to a finite sentinel
// (±1e300) so the report always marshals to JSON. Evaluate calls it before
// returning; it is idempotent and exported for callers that build or mutate
// reports themselves.
func (r *Report) Sanitize() {
	r.SimTime = sanitizeFloat(r.SimTime)
	r.L1Density = sanitizeFloat(r.L1Density)
	for i := range r.Fields {
		n := &r.Fields[i].Norms
		n.L1 = sanitizeFloat(n.L1)
		n.L2 = sanitizeFloat(n.L2)
		n.LInf = sanitizeFloat(n.LInf)
		n.TrimmedL1 = sanitizeFloat(n.TrimmedL1)
		n.TrimmedL2 = sanitizeFloat(n.TrimmedL2)
		n.TrimmedLInf = sanitizeFloat(n.TrimmedLInf)
		n.Scale = sanitizeFloat(n.Scale)
	}
	if r.Plateau != nil {
		r.Plateau.Analytic = sanitizeFloat(r.Plateau.Analytic)
		r.Plateau.Measured = sanitizeFloat(r.Plateau.Measured)
		r.Plateau.RelError = sanitizeFloat(r.Plateau.RelError)
	}
	r.Conservation.Mass = sanitizeFloat(r.Conservation.Mass)
	r.Conservation.Momentum = sanitizeFloat(r.Conservation.Momentum)
	r.Conservation.AngMom = sanitizeFloat(r.Conservation.AngMom)
	r.Conservation.Energy = sanitizeFloat(r.Conservation.Energy)
	for i := range r.Checks {
		r.Checks[i].Value = sanitizeFloat(r.Checks[i].Value)
		r.Checks[i].Limit = sanitizeFloat(r.Checks[i].Limit)
	}
}

// evalFields computes the density, velocity, and pressure error norms over
// the particles inside the solution's validity domain, each trimmed at its
// resolved per-field quantile.
func evalFields(rep *Report, in Input) {
	ps := in.PS
	var eRho, eV, eP []float64
	var sRho, sV, sP float64
	if sc, ok := in.Solution.(analytic.ScaledSolution); ok {
		st := sc.Scales()
		sRho, sV, sP = st.Rho, st.Vel.Norm(), st.P
	}
	for i := 0; i < ps.NLocal; i++ {
		ref, ok := in.Solution.Eval(ps.Pos[i], in.SimTime)
		if !ok {
			continue
		}
		eRho = append(eRho, math.Abs(ps.Rho[i]-ref.Rho))
		sRho = math.Max(sRho, math.Abs(ref.Rho))
		eV = append(eV, ps.Vel[i].Sub(ref.Vel).Norm())
		sV = math.Max(sV, ref.Vel.Norm())
		p := ps.P[i]
		if in.EOS != nil {
			p = in.EOS.Pressure(ps.Rho[i], ps.U[i])
		}
		eP = append(eP, math.Abs(p-ref.P))
		sP = math.Max(sP, math.Abs(ref.P))
	}
	rep.Compared = len(eRho)
	if rep.Compared == 0 {
		return
	}
	thr := in.Thresholds
	rep.Fields = []FieldError{
		{Field: "density", Norms: computeNorms(eRho, sRho, thr.Quantile("density"))},
		{Field: "velocity", Norms: computeNorms(eV, sV, thr.Quantile("velocity"))},
		{Field: "pressure", Norms: computeNorms(eP, sP, thr.Quantile("pressure"))},
	}
	rep.L1Density = rep.Fields[0].TrimmedL1
}

// computeNorms evaluates plain and trimmed L1/L2/L∞ of the absolute errors
// normalized by scale. The errs slice is sorted in place.
func computeNorms(errs []float64, scale float64, q float64) Norms {
	if scale == 0 {
		scale = 1
	}
	n := Norms{Scale: scale, Samples: len(errs)}
	n.L1, n.L2, n.LInf = rawNorms(errs, scale)

	sort.Float64s(errs)
	drop := int(float64(len(errs)) * (1 - q))
	kept := errs[:len(errs)-drop]
	n.Trimmed = drop
	n.TrimmedL1, n.TrimmedL2, n.TrimmedLInf = rawNorms(kept, scale)
	return n
}

func rawNorms(errs []float64, scale float64) (l1, l2, lInf float64) {
	if len(errs) == 0 {
		return 0, 0, 0
	}
	var sum, sum2, max float64
	for _, e := range errs {
		sum += e
		sum2 += e * e
		if e > max {
			max = e
		}
	}
	nf := float64(len(errs))
	return sum / nf / scale, math.Sqrt(sum2/nf) / scale, max / scale
}

// measurePlateau averages the measured density over the plateau region.
func measurePlateau(ps *part.Set, pl analytic.Plateau) *PlateauEstimate {
	var sum float64
	var n int
	for i := 0; i < ps.NLocal; i++ {
		if pl.In(ps.Pos[i]) {
			sum += ps.Rho[i]
			n++
		}
	}
	if n == 0 {
		return nil
	}
	est := &PlateauEstimate{Analytic: pl.Value, Measured: sum / float64(n), Particles: n}
	if pl.Value != 0 {
		est.RelError = math.Abs(est.Measured-pl.Value) / math.Abs(pl.Value)
	}
	return est
}

// buildChecks assembles the acceptance checks for every non-zero
// threshold. Norm checks require a reference with compared particles;
// drift checks require the initial conservation snapshot.
func buildChecks(rep *Report, in Input) []Check {
	var checks []Check
	norm := func(field string) (Norms, bool) {
		for _, f := range rep.Fields {
			if f.Field == field {
				return f.Norms, true
			}
		}
		return Norms{}, false
	}
	addNorm := func(name, field string, limit float64) {
		if limit <= 0 {
			return
		}
		if n, ok := norm(field); ok {
			checks = append(checks, Check{Name: name, Value: n.TrimmedL1, Limit: limit, Pass: n.TrimmedL1 <= limit})
		}
	}
	addNorm("density-l1-trimmed", "density", in.Thresholds.L1Density)
	addNorm("velocity-l1-trimmed", "velocity", in.Thresholds.L1Velocity)
	addNorm("pressure-l1-trimmed", "pressure", in.Thresholds.L1Pressure)
	// Sentinel failures: registered norm gates that could not run at all.
	normBound := in.Thresholds.L1Density > 0 || in.Thresholds.L1Velocity > 0 ||
		in.Thresholds.L1Pressure > 0
	if in.ReferenceErr != nil && normBound {
		checks = append(checks, Check{Name: "reference-construction", Value: 1, Limit: 0})
	}
	if in.Solution != nil && rep.Compared == 0 && normBound {
		checks = append(checks, Check{Name: "reference-coverage", Value: 1, Limit: 0})
	}
	if in.HaveInitial {
		if lim := in.Thresholds.MaxEnergyDrift; lim > 0 {
			v := rep.Conservation.Energy
			checks = append(checks, Check{Name: "energy-drift", Value: v, Limit: lim, Pass: v <= lim})
		}
		if lim := in.Thresholds.MaxMomentumDrift; lim > 0 {
			v := rep.Conservation.Momentum
			checks = append(checks, Check{Name: "momentum-drift", Value: v, Limit: lim, Pass: v <= lim})
		}
	}
	return checks
}
