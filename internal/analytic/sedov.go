package analytic

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Sedov is the exact Sedov-Taylor self-similar point-blast solution
// (Sedov 1959; Landau & Lifshitz §106) in spherical geometry for a uniform
// cold ambient medium: shock radius R(t) = (E t^2 / (alpha rho0))^(1/5)
// with the interior profile obtained by integrating the self-similar ODE
// system from the strong-shock boundary conditions inward. The energy
// integral alpha is computed from the same profile, so the solution is
// exact to integration tolerance for any gamma.
type Sedov struct {
	// E is the blast energy, Rho0 the ambient density, Gamma the index.
	E, Rho0, Gamma float64
	// Center is the deposition point.
	Center vec.V3
	// RValid invalidates the solution once the shock radius reaches it
	// (e.g. half the periodic box, where images start to interfere);
	// 0 disables the bound.
	RValid float64

	// Alpha is the computed energy integral: E = Alpha * rho0 * R^5 / t^2.
	Alpha float64

	// Similarity profile sampled uniformly in x = ln(xi), descending from
	// x=0 (the shock, xi=1) in steps of -dx.
	dx         float64
	v, lg, lz  []float64 // V, ln G, ln Z at x_i = -i*dx
	dvE        [3]float64
	xMin       float64
	pAmbient   float64
	selfSimJ   int
	selfSimDel float64
}

const (
	sedovSteps = 12000
	sedovDX    = 1e-3
)

// NewSedov integrates the self-similar profile for the given blast.
func NewSedov(e, rho0, gamma float64, center vec.V3, rValid float64) (*Sedov, error) {
	if e <= 0 || rho0 <= 0 {
		return nil, fmt.Errorf("analytic: sedov requires positive energy and density (E=%g rho0=%g)", e, rho0)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("analytic: sedov gamma %g <= 1", gamma)
	}
	s := &Sedov{
		E: e, Rho0: rho0, Gamma: gamma, Center: center, RValid: rValid,
		selfSimJ: 3, dx: sedovDX,
	}
	s.selfSimDel = 2.0 / float64(s.selfSimJ+2)
	s.integrate()
	return s, nil
}

// derivs evaluates the self-similar ODE right-hand side at state
// y = (V, ln G, ln Z), with x = ln xi the independent variable.
func (s *Sedov) derivs(y [3]float64) [3]float64 {
	g := s.Gamma
	j := float64(s.selfSimJ)
	del := s.selfSimDel
	V := y[0]
	Z := math.Exp(y[2])

	num := V*(1/del-V)*(V-1) + j*Z*V - (2*Z/g)*(1/del-1)
	dV := num / ((V-1)*(V-1) - Z)
	dG := -(dV + j*V) / (V - 1)
	dZ := (2/del-2*V)/(V-1) + (g-1)*dG
	return [3]float64{dV, dG, dZ}
}

// integrate runs RK4 from the shock (x=0) inward and computes alpha from
// the energy integral of the resulting profile.
func (s *Sedov) integrate() {
	g := s.Gamma
	// Strong-shock boundary conditions at xi = 1.
	y := [3]float64{
		2 / (g + 1),
		math.Log((g + 1) / (g - 1)),
		math.Log(2 * g * (g - 1) / ((g + 1) * (g + 1))),
	}
	s.v = make([]float64, sedovSteps+1)
	s.lg = make([]float64, sedovSteps+1)
	s.lz = make([]float64, sedovSteps+1)
	s.v[0], s.lg[0], s.lz[0] = y[0], y[1], y[2]

	h := -s.dx
	add := func(a [3]float64, k [3]float64, c float64) [3]float64 {
		return [3]float64{a[0] + c*k[0], a[1] + c*k[1], a[2] + c*k[2]}
	}
	for i := 1; i <= sedovSteps; i++ {
		k1 := s.derivs(y)
		k2 := s.derivs(add(y, k1, h/2))
		k3 := s.derivs(add(y, k2, h/2))
		k4 := s.derivs(add(y, k3, h))
		for c := 0; c < 3; c++ {
			y[c] += h / 6 * (k1[c] + 2*k2[c] + 2*k3[c] + k4[c])
		}
		s.v[i], s.lg[i], s.lz[i] = y[0], y[1], y[2]
	}
	s.xMin = -float64(sedovSteps) * s.dx
	s.dvE = s.derivs(y) // asymptotic slopes for xi below the table

	// Energy integral I = ∫ (G V²/2 + G Z / (γ(γ-1))) ξ^{j+1} dξ over
	// (0, 1], evaluated as ∫ f ξ^{j+2} dx by trapezoid on the x grid.
	integrand := func(i int) float64 {
		xi := math.Exp(-float64(i) * s.dx)
		G := math.Exp(s.lg[i])
		Z := math.Exp(s.lz[i])
		V := s.v[i]
		f := G*V*V/2 + G*Z/(g*(g-1))
		return f * math.Pow(xi, float64(s.selfSimJ+2))
	}
	var integral float64
	prev := integrand(0)
	for i := 1; i <= sedovSteps; i++ {
		cur := integrand(i)
		integral += 0.5 * (prev + cur) * s.dx
		prev = cur
	}
	// alpha = S_j * delta^2 * I with S_3 = 4*pi.
	s.Alpha = 4 * math.Pi * s.selfSimDel * s.selfSimDel * integral
}

// ShockRadius returns R(t) = (E t^2 / (alpha rho0))^(1/5).
func (s *Sedov) ShockRadius(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return math.Pow(s.E*t*t/(s.Alpha*s.Rho0), 1.0/5.0)
}

// profileAt interpolates (V, G, Z) at x = ln(xi) <= 0, extending the table
// below its range with the asymptotic log-slopes.
func (s *Sedov) profileAt(x float64) (V, G, Z float64) {
	if x <= s.xMin {
		d := x - s.xMin
		n := sedovSteps
		return s.v[n], math.Exp(s.lg[n] + s.dvE[1]*d), math.Exp(s.lz[n] + s.dvE[2]*d)
	}
	f := -x / s.dx
	i := int(f)
	if i >= sedovSteps {
		i = sedovSteps - 1
	}
	w := f - float64(i)
	lerp := func(a []float64) float64 { return a[i]*(1-w) + a[i+1]*w }
	return lerp(s.v), math.Exp(lerp(s.lg)), math.Exp(lerp(s.lz))
}

// Name implements Solution.
func (s *Sedov) Name() string { return "sedov-taylor" }

// Eval implements Solution: ambient outside the shock, the self-similar
// profile inside. Once the shock radius exceeds RValid the blast interacts
// with the domain boundary and every point is invalid.
func (s *Sedov) Eval(pos vec.V3, t float64) (State, bool) {
	R := s.ShockRadius(t)
	if s.RValid > 0 && R >= s.RValid {
		return State{}, false
	}
	ambient := State{Rho: s.Rho0, P: s.pAmbient}
	if t <= 0 {
		return ambient, true
	}
	d := pos.Sub(s.Center)
	r := d.Norm()
	if r >= R {
		return ambient, true
	}
	if r == 0 {
		// At the exact center u=0; density follows G's asymptote and the
		// pressure tends to a finite limit.
		_, G, _ := s.profileAt(s.xMin)
		return State{Rho: s.Rho0 * G, P: s.centerPressure(t)}, true
	}
	xi := r / R
	V, G, Z := s.profileAt(math.Log(xi))
	del := s.selfSimDel
	u := del * (r / t) * V
	rho := s.Rho0 * G
	c2 := del * del * (r / t) * (r / t) * Z
	return State{
		Rho: rho,
		Vel: d.Scale(u / r),
		P:   rho * c2 / s.Gamma,
	}, true
}

// centerPressure evaluates the finite central pressure limit: rho*c²/γ with
// rho → 0 and c² → ∞ combining to G·Z·ξ² approaching a constant.
func (s *Sedov) centerPressure(t float64) float64 {
	n := sedovSteps
	xi := math.Exp(s.xMin)
	G := math.Exp(s.lg[n])
	Z := math.Exp(s.lz[n])
	R := s.ShockRadius(t)
	del := s.selfSimDel
	r := xi * R
	return s.Rho0 * G * del * del * (r / t) * (r / t) * Z / s.Gamma
}
