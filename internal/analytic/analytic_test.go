package analytic

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestNohSolution(t *testing.T) {
	n := &Noh{Rho0: 1, VIn: 1, Gamma: 5.0 / 3.0, U0: 1e-6, RMax: 0.5}

	// Post-shock plateau: ((gamma+1)/(gamma-1))^3 = 4^3 = 64 for 5/3.
	if got := n.PlateauDensity(); math.Abs(got-64) > 1e-9 {
		t.Errorf("plateau density = %g, want 64", got)
	}
	// Shock radius: (gamma-1)/2 * v * t = t/3.
	tm := 0.09
	rs := n.shockRadius(tm)
	if math.Abs(rs-0.03) > 1e-12 {
		t.Errorf("shock radius at t=%g: %g, want 0.03", tm, rs)
	}
	// Inside: plateau density, zero velocity, p = (gamma-1)/2 rho2 v^2.
	st, ok := n.Eval(vec.V3{X: 0.01}, tm)
	if !ok {
		t.Fatal("post-shock point invalid")
	}
	if math.Abs(st.Rho-64) > 1e-9 || st.Vel.Norm() != 0 {
		t.Errorf("post-shock state = %+v", st)
	}
	if math.Abs(st.P-64.0/3.0) > 1e-9 {
		t.Errorf("post-shock pressure = %g, want 64/3", st.P)
	}
	// Outside: geometric buildup rho0 (1 + v t / r)^2 and inward unit speed.
	r := 0.2
	st, ok = n.Eval(vec.V3{X: r}, tm)
	if !ok {
		t.Fatal("pre-shock point invalid")
	}
	wantRho := math.Pow(1+tm/r, 2)
	if math.Abs(st.Rho-wantRho) > 1e-12 {
		t.Errorf("pre-shock density = %g, want %g", st.Rho, wantRho)
	}
	if math.Abs(st.Vel.X - -1) > 1e-12 {
		t.Errorf("pre-shock velocity = %+v, want -1 x-hat", st.Vel)
	}
	// Points the free faces may have disturbed are invalid.
	if _, ok := n.Eval(vec.V3{X: 0.45}, tm); ok {
		t.Error("point inside the face-disturbance margin reported valid")
	}
}

// TestSedovAlpha pins the energy integral against the published Sedov
// values: alpha = 0.851 for gamma = 1.4 and 0.494 for gamma = 5/3
// (spherical, uniform ambient), validating the whole ODE integration.
func TestSedovAlpha(t *testing.T) {
	for _, tc := range []struct {
		gamma, alpha float64
	}{
		{1.4, 0.8511},
		{5.0 / 3.0, 0.4936},
	} {
		s, err := NewSedov(1, 1, tc.gamma, vec.V3{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(s.Alpha-tc.alpha) / tc.alpha; rel > 0.01 {
			t.Errorf("gamma=%.3f: alpha = %.5f, want %.4f (rel err %.3f)", tc.gamma, s.Alpha, tc.alpha, rel)
		}
	}
}

func TestSedovProfile(t *testing.T) {
	g := 5.0 / 3.0
	s, err := NewSedov(1, 1, g, vec.V3{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tm := 0.05
	R := s.ShockRadius(tm)
	if R <= 0 {
		t.Fatal("non-positive shock radius")
	}
	// Immediately behind the shock: the strong-shock jump values.
	st, ok := s.Eval(vec.V3{X: R * (1 - 1e-9)}, tm)
	if !ok {
		t.Fatal("post-shock point invalid")
	}
	if want := (g + 1) / (g - 1); math.Abs(st.Rho-want) > 1e-3 {
		t.Errorf("post-shock density = %g, want %g", st.Rho, want)
	}
	shockSpeed := 2 * R / (5 * tm)
	if want := 2 * shockSpeed / (g + 1); math.Abs(st.Vel.X-want) > 1e-3*want {
		t.Errorf("post-shock velocity = %g, want %g", st.Vel.X, want)
	}
	if want := 2 * shockSpeed * shockSpeed / (g + 1); math.Abs(st.P-want) > 1e-3*want {
		t.Errorf("post-shock pressure = %g, want %g", st.P, want)
	}
	// Ahead of the shock: ambient.
	if st, ok := s.Eval(vec.V3{X: 2 * R}, tm); !ok || st.Rho != 1 || st.Vel.Norm() != 0 {
		t.Errorf("ambient state = %+v ok=%v", st, ok)
	}
	// The interior density drops toward zero and pressure stays finite.
	inner, ok := s.Eval(vec.V3{X: R * 0.05}, tm)
	if !ok {
		t.Fatal("interior point invalid")
	}
	if inner.Rho >= st.Rho || inner.Rho < 0 {
		t.Errorf("interior density %g not in (0, ambient-jump range)", inner.Rho)
	}
	if inner.P <= 0 || math.IsInf(inner.P, 0) || math.IsNaN(inner.P) {
		t.Errorf("interior pressure %g not finite-positive", inner.P)
	}
	// Validity bound: once R(t) reaches RValid every point is invalid.
	sb, err := NewSedov(1, 1, g, vec.V3{}, R/2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sb.Eval(vec.V3{}, tm); ok {
		t.Error("point reported valid after the shock reached RValid")
	}
}

func TestGreshoProfile(t *testing.T) {
	g := &Gresho{Rho0: 1, Center: vec.V3{X: 0.5, Y: 0.5}}

	// Peak azimuthal speed 1 at r=0.2; zero at center and beyond r=0.4.
	st, _ := g.Eval(vec.V3{X: 0.7, Y: 0.5}, 1.0)
	if math.Abs(st.Vel.Norm()-1) > 1e-12 {
		t.Errorf("speed at r=0.2: %g, want 1", st.Vel.Norm())
	}
	// Azimuthal direction: at (x>center, y=center) the velocity is +y.
	if st.Vel.Y <= 0 || math.Abs(st.Vel.X) > 1e-12 {
		t.Errorf("velocity at r=0.2 on +x axis = %+v, want +y-hat", st.Vel)
	}
	st, _ = g.Eval(vec.V3{X: 0.95, Y: 0.5}, 0)
	if st.Vel.Norm() != 0 {
		t.Errorf("speed at r=0.45: %g, want 0", st.Vel.Norm())
	}
	if want := 3 + 4*math.Log(2); math.Abs(st.P-want) > 1e-12 {
		t.Errorf("outer pressure %g, want %g", st.P, want)
	}
	// Pressure continuity at the profile breaks.
	for _, r := range []float64{0.2, 0.4} {
		below := GreshoPressure(r - 1e-9)
		above := GreshoPressure(r + 1e-9)
		if math.Abs(below-above) > 1e-6 {
			t.Errorf("pressure discontinuous at r=%g: %g vs %g", r, below, above)
		}
	}
	// Centrifugal balance: dp/dr = rho v^2 / r (midpoints of both branches).
	for _, r := range []float64{0.1, 0.3} {
		h := 1e-6
		dpdr := (GreshoPressure(r+h) - GreshoPressure(r-h)) / (2 * h)
		v := GreshoVPhi(r)
		if math.Abs(dpdr-v*v/r) > 1e-5 {
			t.Errorf("balance broken at r=%g: dp/dr=%g, v^2/r=%g", r, dpdr, v*v/r)
		}
	}
}
