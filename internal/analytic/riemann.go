package analytic

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// RiemannState is one side of a Riemann problem: density, normal velocity,
// and pressure.
type RiemannState struct {
	Rho, U, P float64
}

// Riemann is the exact solution of the 1D Euler Riemann problem for an
// ideal gas (Toro, "Riemann Solvers and Numerical Methods for Fluid
// Dynamics", ch. 4): the star-region pressure and velocity from Newton
// iteration on the pressure function, and a full wave-pattern sampler.
type Riemann struct {
	L, R  RiemannState
	Gamma float64

	cL, cR float64 // initial sound speeds
	pStar  float64
	uStar  float64
}

// NewRiemann solves the Riemann problem (l | r) for adiabatic index gamma.
// It returns an error for non-physical states or initial conditions that
// generate vacuum (which the sampler does not cover).
func NewRiemann(l, r RiemannState, gamma float64) (*Riemann, error) {
	if gamma <= 1 {
		return nil, fmt.Errorf("analytic: riemann gamma %g <= 1", gamma)
	}
	if l.Rho <= 0 || r.Rho <= 0 || l.P <= 0 || r.P <= 0 {
		return nil, fmt.Errorf("analytic: riemann requires positive densities and pressures (L=%+v R=%+v)", l, r)
	}
	rp := &Riemann{L: l, R: r, Gamma: gamma}
	rp.cL = math.Sqrt(gamma * l.P / l.Rho)
	rp.cR = math.Sqrt(gamma * r.P / r.Rho)

	// Pressure positivity (no-vacuum) condition, Toro eq. 4.40.
	if 2*(rp.cL+rp.cR)/(gamma-1) <= r.U-l.U {
		return nil, fmt.Errorf("analytic: riemann initial states generate vacuum")
	}
	rp.solveStar()
	return rp, nil
}

// fK evaluates one side's pressure function f_K(p) and its derivative
// (Toro eqs. 4.6-4.7): the velocity change across the K wave when the star
// pressure is p — a shock branch for p > p_K, a rarefaction branch below.
func (rp *Riemann) fK(p float64, s RiemannState, c float64) (f, df float64) {
	g := rp.Gamma
	if p > s.P {
		a := 2 / ((g + 1) * s.Rho)
		b := (g - 1) / (g + 1) * s.P
		sq := math.Sqrt(a / (p + b))
		f = (p - s.P) * sq
		df = sq * (1 - (p-s.P)/(2*(p+b)))
		return f, df
	}
	pr := p / s.P
	f = 2 * c / (g - 1) * (math.Pow(pr, (g-1)/(2*g)) - 1)
	df = math.Pow(pr, -(g+1)/(2*g)) / (s.Rho * c)
	return f, df
}

// solveStar finds p* by Newton iteration on f_L + f_R + Δu = 0, seeded
// with the two-rarefaction approximation (Toro eq. 4.46), then u* from
// the solved p*.
func (rp *Riemann) solveStar() {
	g := rp.Gamma
	du := rp.R.U - rp.L.U

	// Two-rarefaction initial guess; positive by the no-vacuum condition.
	z := (g - 1) / (2 * g)
	num := rp.cL + rp.cR - 0.5*(g-1)*du
	den := rp.cL/math.Pow(rp.L.P, z) + rp.cR/math.Pow(rp.R.P, z)
	p := math.Pow(num/den, 1/z)
	if p < 1e-14 {
		p = 1e-14
	}

	for i := 0; i < 100; i++ {
		fL, dL := rp.fK(p, rp.L, rp.cL)
		fR, dR := rp.fK(p, rp.R, rp.cR)
		dp := (fL + fR + du) / (dL + dR)
		pn := p - dp
		if pn <= 0 {
			pn = 0.5 * p // bisect toward zero rather than overshooting
		}
		rel := 2 * math.Abs(pn-p) / (pn + p)
		p = pn
		if rel < 1e-14 {
			break
		}
	}
	rp.pStar = p
	fL, _ := rp.fK(p, rp.L, rp.cL)
	fR, _ := rp.fK(p, rp.R, rp.cR)
	rp.uStar = 0.5*(rp.L.U+rp.R.U) + 0.5*(fR-fL)
}

// Star returns the star-region pressure and velocity.
func (rp *Riemann) Star() (pStar, uStar float64) { return rp.pStar, rp.uStar }

// StarDensities returns the densities adjacent to the contact: rho*L behind
// the left wave and rho*R behind the right wave.
func (rp *Riemann) StarDensities() (rhoL, rhoR float64) {
	g := rp.Gamma
	gr := (g - 1) / (g + 1)
	side := func(s RiemannState) float64 {
		pr := rp.pStar / s.P
		if rp.pStar > s.P { // shock (Toro eq. 4.50/4.57)
			return s.Rho * (pr + gr) / (gr*pr + 1)
		}
		return s.Rho * math.Pow(pr, 1/g) // isentropic rarefaction
	}
	return side(rp.L), side(rp.R)
}

// ShockSpeeds returns the left and right wave shock speeds; a side whose
// wave is a rarefaction reports ok=false for that side.
func (rp *Riemann) ShockSpeeds() (sL float64, okL bool, sR float64, okR bool) {
	g := rp.Gamma
	if rp.pStar > rp.L.P {
		sL = rp.L.U - rp.cL*math.Sqrt((g+1)/(2*g)*rp.pStar/rp.L.P+(g-1)/(2*g))
		okL = true
	}
	if rp.pStar > rp.R.P {
		sR = rp.R.U + rp.cR*math.Sqrt((g+1)/(2*g)*rp.pStar/rp.R.P+(g-1)/(2*g))
		okR = true
	}
	return sL, okL, sR, okR
}

// Sample evaluates the self-similar solution at xi = x/t (Toro's SAMPLE
// routine): the full wave pattern of shock, contact, and rarefaction
// including rarefaction-fan interiors.
func (rp *Riemann) Sample(xi float64) RiemannState {
	g := rp.Gamma
	gr := (g - 1) / (g + 1)
	if xi <= rp.uStar {
		// Left of the contact.
		s, c := rp.L, rp.cL
		if rp.pStar > s.P {
			// Left shock.
			sh := s.U - c*math.Sqrt((g+1)/(2*g)*rp.pStar/s.P+(g-1)/(2*g))
			if xi <= sh {
				return s
			}
			pr := rp.pStar / s.P
			return RiemannState{Rho: s.Rho * (pr + gr) / (gr*pr + 1), U: rp.uStar, P: rp.pStar}
		}
		// Left rarefaction.
		head := s.U - c
		cStar := c * math.Pow(rp.pStar/s.P, (g-1)/(2*g))
		tail := rp.uStar - cStar
		switch {
		case xi <= head:
			return s
		case xi >= tail:
			return RiemannState{Rho: s.Rho * math.Pow(rp.pStar/s.P, 1/g), U: rp.uStar, P: rp.pStar}
		default:
			// Inside the fan (Toro eq. 4.56).
			u := 2 / (g + 1) * (c + (g-1)/2*s.U + xi)
			cf := 2 / (g + 1) * (c + (g-1)/2*(s.U-xi))
			return RiemannState{
				Rho: s.Rho * math.Pow(cf/c, 2/(g-1)),
				U:   u,
				P:   s.P * math.Pow(cf/c, 2*g/(g-1)),
			}
		}
	}
	// Right of the contact (mirror of the left branch).
	s, c := rp.R, rp.cR
	if rp.pStar > s.P {
		sh := s.U + c*math.Sqrt((g+1)/(2*g)*rp.pStar/s.P+(g-1)/(2*g))
		if xi >= sh {
			return s
		}
		pr := rp.pStar / s.P
		return RiemannState{Rho: s.Rho * (pr + gr) / (gr*pr + 1), U: rp.uStar, P: rp.pStar}
	}
	head := s.U + c
	cStar := c * math.Pow(rp.pStar/s.P, (g-1)/(2*g))
	tail := rp.uStar + cStar
	switch {
	case xi >= head:
		return s
	case xi <= tail:
		return RiemannState{Rho: s.Rho * math.Pow(rp.pStar/s.P, 1/g), U: rp.uStar, P: rp.pStar}
	default:
		u := 2 / (g + 1) * (-c + (g-1)/2*s.U + xi)
		cf := 2 / (g + 1) * (c - (g-1)/2*(s.U-xi))
		return RiemannState{
			Rho: s.Rho * math.Pow(cf/c, 2/(g-1)),
			U:   u,
			P:   s.P * math.Pow(cf/c, 2*g/(g-1)),
		}
	}
}

// SodTube is the exact Riemann solution mapped onto the registry's Sod
// shock-tube geometry: a tube along x with the diaphragm at X0, free
// (vacuum) x ends at XMin/XMax whose inward-running disturbances bound the
// validity domain.
type SodTube struct {
	RP         *Riemann
	X0         float64
	XMin, XMax float64
}

// NewSodTube builds the exact solution of a Sod-class tube with left state
// (rhoL, pL), right state (rhoR, pR), both at rest, diaphragm at x0 in the
// tube [xmin, xmax].
func NewSodTube(rhoL, pL, rhoR, pR, gamma, x0, xmin, xmax float64) (*SodTube, error) {
	rp, err := NewRiemann(RiemannState{Rho: rhoL, P: pL}, RiemannState{Rho: rhoR, P: pR}, gamma)
	if err != nil {
		return nil, err
	}
	return &SodTube{RP: rp, X0: x0, XMin: xmin, XMax: xmax}, nil
}

// Name implements Solution.
func (sd *SodTube) Name() string { return "riemann-sod" }

// Eval implements Solution. Points the free tube ends have disturbed (the
// end rarefactions run inward at the local sound speed) are invalid.
func (sd *SodTube) Eval(pos vec.V3, t float64) (State, bool) {
	x := pos.X
	if x < sd.XMin+sd.RP.cL*t || x > sd.XMax-sd.RP.cR*t {
		return State{}, false
	}
	if t <= 0 {
		s := sd.RP.L
		if x >= sd.X0 {
			s = sd.RP.R
		}
		return State{Rho: s.Rho, Vel: vec.V3{X: s.U}, P: s.P}, true
	}
	s := sd.RP.Sample((x - sd.X0) / t)
	return State{Rho: s.Rho, Vel: vec.V3{X: s.U}, P: s.P}, true
}

// Plateau implements PlateauSolution: the star region between the contact
// discontinuity and the right shock (density rho*R), inset by 15% on both
// sides to keep clear of the smeared wave fronts. Absent when the right
// wave is not a shock or the region has not yet opened.
func (sd *SodTube) Plateau(t float64) (Plateau, bool) {
	_, _, sR, okR := sd.RP.ShockSpeeds()
	if !okR || t <= 0 {
		return Plateau{}, false
	}
	_, uStar := sd.RP.Star()
	lo := sd.X0 + uStar*t
	hi := sd.X0 + sR*t
	if hi <= lo {
		return Plateau{}, false
	}
	w := hi - lo
	lo += 0.15 * w
	hi -= 0.15 * w
	_, rhoR := sd.RP.StarDensities()
	return Plateau{
		Value: rhoR,
		In:    func(pos vec.V3) bool { return pos.X > lo && pos.X < hi },
	}, true
}
