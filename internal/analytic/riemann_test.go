package analytic

import (
	"math"
	"testing"

	"repro/internal/vec"
)

// sodRiemann is Toro's Test 1 (the Sod problem): the canonical validation
// values come from Toro, "Riemann Solvers and Numerical Methods for Fluid
// Dynamics", Table 4.3.
func sodRiemann(t *testing.T) *Riemann {
	t.Helper()
	rp, err := NewRiemann(
		RiemannState{Rho: 1, U: 0, P: 1},
		RiemannState{Rho: 0.125, U: 0, P: 0.1},
		1.4)
	if err != nil {
		t.Fatalf("NewRiemann: %v", err)
	}
	return rp
}

func TestRiemannSodStarRegion(t *testing.T) {
	rp := sodRiemann(t)
	pStar, uStar := rp.Star()
	// Toro Table 4.3, test 1: p* = 0.30313, u* = 0.92745.
	if math.Abs(pStar-0.30313) > 5e-5 {
		t.Errorf("p* = %.6f, want 0.30313", pStar)
	}
	if math.Abs(uStar-0.92745) > 5e-5 {
		t.Errorf("u* = %.6f, want 0.92745", uStar)
	}
	rhoL, rhoR := rp.StarDensities()
	// Toro Table 4.3: rho*L = 0.42632 (rarefaction side), rho*R = 0.26557
	// (shock side).
	if math.Abs(rhoL-0.42632) > 5e-5 {
		t.Errorf("rho*L = %.6f, want 0.42632", rhoL)
	}
	if math.Abs(rhoR-0.26557) > 5e-5 {
		t.Errorf("rho*R = %.6f, want 0.26557", rhoR)
	}
	_, okL, sR, okR := rp.ShockSpeeds()
	if okL {
		t.Error("left wave reported as a shock; the Sod left wave is a rarefaction")
	}
	if !okR {
		t.Fatal("right wave not reported as a shock")
	}
	// S = u_R + c_R sqrt((g+1)/(2g) p*/p_R + (g-1)/(2g)) = 1.75216.
	if math.Abs(sR-1.75216) > 5e-4 {
		t.Errorf("right shock speed = %.6f, want 1.75216", sR)
	}
}

// TestRiemannSodSampledProfile checks the sampled wave pattern region by
// region at a fixed xi = x/t for each regime.
func TestRiemannSodSampledProfile(t *testing.T) {
	rp := sodRiemann(t)
	pStar, uStar := rp.Star()
	rhoStarL, rhoStarR := rp.StarDensities()
	cL := math.Sqrt(1.4 * 1.0 / 1.0) // ~1.18322

	// Far left: undisturbed left state.
	if s := rp.Sample(-2); s.Rho != 1 || s.U != 0 || s.P != 1 {
		t.Errorf("far-left sample = %+v, want the left state", s)
	}
	// Far right: undisturbed right state.
	if s := rp.Sample(2); s.Rho != 0.125 || s.U != 0 || s.P != 0.1 {
		t.Errorf("far-right sample = %+v, want the right state", s)
	}
	// Between rarefaction tail and contact: the left star state.
	cStarL := cL * math.Pow(pStar/1.0, 0.4/2.8)
	tail := uStar - cStarL
	xi := 0.5 * (tail + uStar)
	if s := rp.Sample(xi); math.Abs(s.Rho-rhoStarL) > 1e-9 || math.Abs(s.U-uStar) > 1e-9 {
		t.Errorf("star-L sample = %+v, want rho=%.5f u=%.5f", s, rhoStarL, uStar)
	}
	// Between contact and shock: the right star state.
	_, _, sR, _ := rp.ShockSpeeds()
	xi = 0.5 * (uStar + sR)
	if s := rp.Sample(xi); math.Abs(s.Rho-rhoStarR) > 1e-9 || math.Abs(s.P-pStar) > 1e-9 {
		t.Errorf("star-R sample = %+v, want rho=%.5f p=%.5f", s, rhoStarR, pStar)
	}
	// Inside the left rarefaction fan: continuous, characteristics exact
	// (u - c = xi along the fan).
	xi = 0.5 * (-cL + tail)
	s := rp.Sample(xi)
	c := math.Sqrt(1.4 * s.P / s.Rho)
	if math.Abs((s.U-c)-xi) > 1e-9 {
		t.Errorf("fan sample at xi=%.4f: u-c = %.6f, want xi", xi, s.U-c)
	}
	// The fan is isentropic: p/rho^gamma matches the left state.
	if sEnt := s.P / math.Pow(s.Rho, 1.4); math.Abs(sEnt-1.0) > 1e-9 {
		t.Errorf("fan entropy p/rho^gamma = %.6f, want 1", sEnt)
	}
}

// TestRiemannRankineHugoniot verifies mass and momentum flux continuity
// across the sampled right shock in the shock frame.
func TestRiemannRankineHugoniot(t *testing.T) {
	rp := sodRiemann(t)
	_, _, sR, _ := rp.ShockSpeeds()
	ahead := rp.Sample(sR + 1e-9)
	behind := rp.Sample(sR - 1e-9)
	mAhead := ahead.Rho * (ahead.U - sR)
	mBehind := behind.Rho * (behind.U - sR)
	if math.Abs(mAhead-mBehind) > 1e-6 {
		t.Errorf("mass flux jump across shock: %.8f vs %.8f", mAhead, mBehind)
	}
	pAhead := ahead.P + ahead.Rho*(ahead.U-sR)*(ahead.U-sR)
	pBehind := behind.P + behind.Rho*(behind.U-sR)*(behind.U-sR)
	if math.Abs(pAhead-pBehind) > 1e-6 {
		t.Errorf("momentum flux jump across shock: %.8f vs %.8f", pAhead, pBehind)
	}
}

func TestRiemannRejectsVacuumAndBadStates(t *testing.T) {
	if _, err := NewRiemann(RiemannState{Rho: 1, P: 1}, RiemannState{Rho: -1, P: 1}, 1.4); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := NewRiemann(RiemannState{Rho: 1, P: 1}, RiemannState{Rho: 1, P: 1}, 0.9); err == nil {
		t.Error("gamma < 1 accepted")
	}
	// Strongly receding states generate vacuum.
	if _, err := NewRiemann(
		RiemannState{Rho: 1, U: -20, P: 0.01},
		RiemannState{Rho: 1, U: 20, P: 0.01}, 1.4); err == nil {
		t.Error("vacuum-generating states accepted")
	}
}

func TestSodTubeEvalAndPlateau(t *testing.T) {
	sd, err := NewSodTube(1, 1, 0.125, 0.1, 1.4, 0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// t=0: the initial discontinuity.
	if st, ok := sd.Eval(vec.V3{X: 0.25}, 0); !ok || st.Rho != 1 {
		t.Errorf("t=0 left eval = %+v ok=%v", st, ok)
	}
	if st, ok := sd.Eval(vec.V3{X: 0.75}, 0); !ok || st.Rho != 0.125 {
		t.Errorf("t=0 right eval = %+v ok=%v", st, ok)
	}
	// Points the free ends have disturbed are invalid.
	if _, ok := sd.Eval(vec.V3{X: 0.01}, 0.1); ok {
		t.Error("point inside the left end-disturbance reported valid")
	}
	// Plateau: between contact and shock at t=0.1, value rho*R.
	pl, ok := sd.Plateau(0.1)
	if !ok {
		t.Fatal("no plateau reported")
	}
	_, rhoStarR := sd.RP.StarDensities()
	if math.Abs(pl.Value-rhoStarR) > 1e-9 {
		t.Errorf("plateau value = %.5f, want rho*R = %.5f", pl.Value, rhoStarR)
	}
	_, uStar := sd.RP.Star()
	mid := 0.5 + 0.1*0.5*(uStar+1.75216)
	if !pl.In(vec.V3{X: mid}) {
		t.Errorf("plateau does not contain its own midpoint %.4f", mid)
	}
	if pl.In(vec.V3{X: 0.4}) {
		t.Error("plateau contains a point left of the contact")
	}
}
