package analytic

import (
	"math"

	"repro/internal/vec"
)

// Noh is the exact solution of the Noh spherical implosion (Noh 1987): a
// cold uniform gas converging on the origin at speed VIn forms an outward
// accretion shock at radius (gamma-1)/2 * VIn * t with post-shock plateau
// density Rho0 * ((gamma+1)/(gamma-1))^3; the pre-shock density builds up
// geometrically as Rho0 * (1 + VIn t / r)^2.
//
// (The frequently-quoted (gamma+1)^2/(gamma-1)^2 plateau is the cylindrical
// form; the registry's workload is a 3D spherical implosion, whose plateau
// carries the cube.)
type Noh struct {
	// Rho0 and VIn are the initial uniform density and inward speed.
	Rho0, VIn float64
	// Gamma is the adiabatic index.
	Gamma float64
	// U0 is the tiny initial specific internal energy of the cold gas; it
	// sets the (near-zero) pre-shock reference pressure.
	U0 float64
	// RMax is the half-width of the initial cube; the free faces disturb
	// the solution inward from it.
	RMax float64
}

// Name implements Solution.
func (n *Noh) Name() string { return "noh-spherical" }

// shockRadius returns the accretion shock position at time t.
func (n *Noh) shockRadius(t float64) float64 {
	return 0.5 * (n.Gamma - 1) * n.VIn * t
}

// PlateauDensity returns the analytic post-shock density
// Rho0 ((gamma+1)/(gamma-1))^3.
func (n *Noh) PlateauDensity() float64 {
	r := (n.Gamma + 1) / (n.Gamma - 1)
	return n.Rho0 * r * r * r
}

// Eval implements Solution. Points the free cube faces may have disturbed
// (the evacuation front runs inward at ~VIn, with margin for kernel
// smearing) are invalid.
func (n *Noh) Eval(pos vec.V3, t float64) (State, bool) {
	r := pos.Norm()
	if r >= n.RMax-2*n.VIn*t {
		return State{}, false
	}
	rs := n.shockRadius(t)
	if r < rs {
		rho := n.PlateauDensity()
		return State{
			Rho: rho,
			P:   0.5 * (n.Gamma - 1) * rho * n.VIn * n.VIn,
		}, true
	}
	if r == 0 {
		return State{}, false
	}
	q := 1 + n.VIn*t/r
	rho := n.Rho0 * q * q
	return State{
		Rho: rho,
		Vel: pos.Scale(-n.VIn / r),
		P:   (n.Gamma - 1) * rho * n.U0,
	}, true
}

// Scales implements ScaledSolution: the cold pre-shock gas samples near-
// zero reference pressure, so norms normalize by the post-shock scales
// instead of the sampled maxima.
func (n *Noh) Scales() State {
	rho := n.PlateauDensity()
	return State{
		Rho: rho,
		Vel: vec.V3{X: n.VIn},
		P:   0.5 * (n.Gamma - 1) * rho * n.VIn * n.VIn,
	}
}

// Plateau implements PlateauSolution: the post-shock region r < shock
// radius, with the analytic plateau density.
func (n *Noh) Plateau(t float64) (Plateau, bool) {
	rs := n.shockRadius(t)
	if rs <= 0 {
		return Plateau{}, false
	}
	return Plateau{
		Value: n.PlateauDensity(),
		In:    func(pos vec.V3) bool { return pos.Norm() < rs },
	}, true
}

// Gresho is the steady state of the Gresho-Chan vortex (Gresho & Chan
// 1990): a triangular azimuthal velocity profile whose centrifugal force is
// exactly balanced by the pressure gradient, so the reference is
// time-independent — any evolution away from it is numerical error.
type Gresho struct {
	// Rho0 is the uniform density; the pressure profile scales with it.
	Rho0 float64
	// Center is the vortex axis position (the axis is parallel to z).
	Center vec.V3
}

// Name implements Solution.
func (g *Gresho) Name() string { return "gresho-vortex" }

// GreshoVPhi returns the azimuthal speed of the standard profile at
// cylindrical radius r: 5r inside r=0.2, 2-5r out to r=0.4, zero beyond.
func GreshoVPhi(r float64) float64 {
	switch {
	case r <= 0.2:
		return 5 * r
	case r <= 0.4:
		return 2 - 5*r
	default:
		return 0
	}
}

// GreshoPressure returns the balancing pressure of the standard profile at
// cylindrical radius r, for unit density.
func GreshoPressure(r float64) float64 {
	switch {
	case r <= 0.2:
		return 5 + 12.5*r*r
	case r <= 0.4:
		return 9 + 12.5*r*r - 20*r + 4*math.Log(5*r)
	default:
		return 3 + 4*math.Log(2)
	}
}

// Eval implements Solution; the steady profile is independent of t.
func (g *Gresho) Eval(pos vec.V3, t float64) (State, bool) {
	dx := pos.X - g.Center.X
	dy := pos.Y - g.Center.Y
	r := math.Hypot(dx, dy)
	st := State{Rho: g.Rho0, P: g.Rho0 * GreshoPressure(r)}
	if r > 0 {
		v := GreshoVPhi(r)
		st.Vel = vec.V3{X: -dy / r * v, Y: dx / r * v}
	}
	return st, true
}
