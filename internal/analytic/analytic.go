// Package analytic computes closed-form and exact reference solutions for
// the registered scenarios: the exact Riemann solution of the Sod shock
// tube, the Noh spherical implosion, the Sedov-Taylor self-similar blast,
// and the Gresho-Chan vortex steady state. The paper's position (§5) is
// that SPH code comparisons are only meaningful when constrained by
// quantitative fidelity checks; these solutions are the references that
// internal/verify scores simulation snapshots against.
package analytic

import (
	"repro/internal/vec"
)

// State is the reference fluid state at one point: density, velocity, and
// pressure.
type State struct {
	Rho float64
	Vel vec.V3
	P   float64
}

// Solution evaluates a reference solution at a position and time. The
// boolean reports validity: outside the solution's domain (e.g. regions a
// free boundary has disturbed) the point must not be scored.
type Solution interface {
	// Name identifies the solution in reports ("riemann-sod", "noh", ...).
	Name() string
	// Eval returns the reference state at pos and time t, and whether the
	// solution is valid there.
	Eval(pos vec.V3, t float64) (State, bool)
}

// Plateau describes a constant-density region of a solution (e.g. the Noh
// post-shock plateau, the Sod star region between contact and shock):
// the analytic value and a membership predicate at a fixed time.
type Plateau struct {
	// Value is the analytic plateau density.
	Value float64
	// In reports whether a position lies inside the plateau region.
	In func(pos vec.V3) bool
}

// PlateauSolution is implemented by solutions that expose a post-shock
// density plateau; internal/verify compares the measured mean density over
// the region against the analytic value.
type PlateauSolution interface {
	Solution
	// Plateau returns the plateau at time t, or false if the solution has
	// none (or none has formed yet).
	Plateau(t float64) (Plateau, bool)
}

// ScaledSolution is implemented by solutions whose characteristic field
// magnitudes are not represented among the sampled reference values — e.g.
// the Noh problem before any particle crosses the shock: the sampled
// reference pressure is the cold-gas ~0 while the problem's pressure scale
// is the post-shock value. Error norms normalize by the larger of the
// sampled maximum and these scales, keeping relative errors meaningful.
type ScaledSolution interface {
	Solution
	// Scales returns characteristic magnitudes (zero fields are ignored).
	Scales() State
}
