package ic

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/vec"
)

func TestGreshoStructure(t *testing.T) {
	gr := DefaultGresho(1000)
	ps, pbc, box := gr.Generate()
	if ps.NLocal != gr.NSide*gr.NSide*gr.NSide {
		t.Fatalf("particle count %d, want %d", ps.NLocal, gr.NSide*gr.NSide*gr.NSide)
	}
	if !pbc.X || !pbc.Y || !pbc.Z {
		t.Error("gresho cube must be fully periodic")
	}
	if box.Size != 1 {
		t.Errorf("box size %g, want 1", box.Size)
	}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGreshoMatchesAnalyticProfile: the generated particles sample the
// analytic steady state exactly at t=0 — velocity, density, and (through
// u) pressure.
func TestGreshoMatchesAnalyticProfile(t *testing.T) {
	gr := DefaultGresho(1000)
	ps, _, _ := gr.Generate()
	sol := &analytic.Gresho{Rho0: gr.Rho0, Center: vec.V3{X: 0.5, Y: 0.5}}
	var peak float64
	for i := 0; i < ps.NLocal; i++ {
		ref, ok := sol.Eval(ps.Pos[i], 0)
		if !ok {
			t.Fatalf("analytic profile invalid at %v", ps.Pos[i])
		}
		if dv := ps.Vel[i].Sub(ref.Vel).Norm(); dv > 1e-12 {
			t.Fatalf("particle %d velocity %v, analytic %v", i, ps.Vel[i], ref.Vel)
		}
		if ps.Rho[i] != ref.Rho {
			t.Fatalf("particle %d density %g, analytic %g", i, ps.Rho[i], ref.Rho)
		}
		p := (gr.Gamma - 1) * ps.Rho[i] * ps.U[i]
		if math.Abs(p-ref.P) > 1e-12 {
			t.Fatalf("particle %d pressure %g, analytic %g", i, p, ref.P)
		}
		peak = math.Max(peak, ps.Vel[i].Norm())
	}
	// The discrete lattice should come close to the profile peak of 1.
	if peak < 0.9 || peak > 1.0+1e-12 {
		t.Errorf("peak lattice speed %g, want ~1", peak)
	}
	// Total momentum and angular momentum about the axis are zero by
	// symmetry.
	var mom vec.V3
	for i := 0; i < ps.NLocal; i++ {
		mom = mom.MulAdd(ps.Mass[i], ps.Vel[i])
	}
	if mom.Norm() > 1e-10 {
		t.Errorf("net momentum %v, want ~0", mom)
	}
}
