package ic

import (
	"math"

	"repro/internal/part"
	"repro/internal/sfc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Noh holds the Noh spherical-implosion configuration (Noh 1987): a cold
// uniform gas with every particle moving radially inward at unit speed. An
// outward-travelling accretion shock with an analytic post-shock density
// (gamma+1)^2/(gamma-1)^2 * rho0 forms at the origin, making the problem a
// standard stress test for artificial-viscosity treatments beyond the
// paper's two acceptance cases.
type Noh struct {
	// NSide is the per-axis lattice count; the cube holds NSide^3 particles.
	NSide int
	// Rho0 is the uniform initial density.
	Rho0 float64
	// VIn is the inward radial speed (1 in the classic setup).
	VIn float64
	// U0 is the (tiny) initial specific internal energy; the classic setup
	// is a pressureless cold gas, which SPH approximates with u ~ 0.
	U0 float64
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
}

// DefaultNoh returns the classic configuration scaled to about n particles.
func DefaultNoh(n int) Noh {
	side := int(math.Round(math.Cbrt(float64(n))))
	if side < 2 {
		side = 2
	}
	return Noh{NSide: side, Rho0: 1, VIn: 1, U0: 1e-6, NNeighbors: 100}
}

// Generate builds the particle set: a uniform lattice filling the cube
// [-0.5, 0.5]^3 with velocity -VIn * r_hat toward the origin. The boundary
// is free (no PBC): the implosion runs until the rarefaction from the cube
// faces reaches the region of interest.
func (nh Noh) Generate() (*part.Set, tree.PBC, sfc.Box) {
	nside := nh.NSide
	n := nside * nside * nside
	ps := part.New(n)
	dx := 1.0 / float64(nside)
	cellVol := dx * dx * dx
	nd := 1 / cellVol
	i := 0
	for iz := 0; iz < nside; iz++ {
		for iy := 0; iy < nside; iy++ {
			for ix := 0; ix < nside; ix++ {
				p := vec.V3{
					X: (float64(ix)+0.5)*dx - 0.5,
					Y: (float64(iy)+0.5)*dx - 0.5,
					Z: (float64(iz)+0.5)*dx - 0.5,
				}
				ps.ID[i] = int64(i)
				ps.Pos[i] = p
				r := p.Norm()
				if r > 0 {
					ps.Vel[i] = p.Scale(-nh.VIn / r)
				}
				ps.Mass[i] = nh.Rho0 * cellVol
				ps.Rho[i] = nh.Rho0
				ps.U[i] = nh.U0
				ps.H[i] = hFromDensity(nd, nh.NNeighbors)
				i++
			}
		}
	}
	lo, hi := ps.Bounds()
	return ps, tree.PBC{}, sfc.NewBox(lo, hi)
}

// KelvinHelmholtz holds a shear-layer configuration (e.g. Price 2008): a
// dense slab moving against a lighter ambient medium in pressure
// equilibrium, with a small sinusoidal transverse velocity perturbation
// seeding the instability. Fully periodic, so it exercises the PBC paths of
// the tree and halo exchange in a way neither acceptance case does.
type KelvinHelmholtz struct {
	// NSide is the per-axis lattice count of the unit cube.
	NSide int
	// RhoIn is the slab density (|y - 0.5| < 0.25); RhoOut the ambient.
	RhoIn, RhoOut float64
	// VShear is the half shear speed: the slab moves at +VShear in x, the
	// ambient at -VShear.
	VShear float64
	// P0 is the uniform pressure of the equilibrium.
	P0 float64
	// Gamma is the adiabatic index used to convert P0 to internal energy.
	Gamma float64
	// VSeed and SeedModes set the amplitude and x-wavenumber of the
	// transverse velocity perturbation.
	VSeed     float64
	SeedModes int
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
}

// DefaultKelvinHelmholtz returns the customary 2:1 density-contrast
// configuration scaled to about n particles.
func DefaultKelvinHelmholtz(n int) KelvinHelmholtz {
	side := int(math.Round(math.Cbrt(float64(n))))
	if side < 2 {
		side = 2
	}
	return KelvinHelmholtz{
		NSide: side, RhoIn: 2, RhoOut: 1, VShear: 0.5,
		P0: 2.5, Gamma: 5.0 / 3.0, VSeed: 0.025, SeedModes: 2,
		NNeighbors: 100,
	}
}

// Generate builds the particle set on an equal-spacing lattice over the
// fully periodic unit cube; the density contrast is carried by per-particle
// masses so the slab interface stays noise-free at t=0.
func (kh KelvinHelmholtz) Generate() (*part.Set, tree.PBC, sfc.Box) {
	nside := kh.NSide
	n := nside * nside * nside
	ps := part.New(n)
	dx := 1.0 / float64(nside)
	cellVol := dx * dx * dx
	i := 0
	for iz := 0; iz < nside; iz++ {
		z := (float64(iz) + 0.5) * dx
		for iy := 0; iy < nside; iy++ {
			y := (float64(iy) + 0.5) * dx
			for ix := 0; ix < nside; ix++ {
				x := (float64(ix) + 0.5) * dx
				rho := kh.RhoOut
				vx := -kh.VShear
				if math.Abs(y-0.5) < 0.25 {
					rho = kh.RhoIn
					vx = kh.VShear
				}
				ps.ID[i] = int64(i)
				ps.Pos[i] = vec.V3{X: x, Y: y, Z: z}
				vy := kh.VSeed * math.Sin(2*math.Pi*float64(kh.SeedModes)*x) *
					(math.Exp(-squared((y-0.25)/0.05)) + math.Exp(-squared((y-0.75)/0.05)))
				ps.Vel[i] = vec.V3{X: vx, Y: vy}
				ps.Mass[i] = rho * cellVol
				ps.Rho[i] = rho
				ps.U[i] = kh.P0 / ((kh.Gamma - 1) * rho)
				ps.H[i] = hFromDensity(1/cellVol, kh.NNeighbors)
				i++
			}
		}
	}
	pbc := tree.PBC{X: true, Y: true, Z: true, L: vec.V3{X: 1, Y: 1, Z: 1}}
	return ps, pbc, sfc.Box{Lo: vec.V3{}, Size: 1}
}

func squared(x float64) float64 { return x * x }
