// Package ic generates initial conditions for the validation and acceptance
// tests of the mini-app (paper Table 5): the rotating square patch
// (Colagrossi 2005) and the Evrard collapse (Evrard 1988), plus a uniform
// cube and a Sedov-Taylor blast used by unit tests and extension studies.
package ic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/part"
	"repro/internal/sfc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// hFromDensity returns the smoothing length that encloses approximately
// nNeighbors particles of number density nd inside the kernel support 2h.
func hFromDensity(nd float64, nNeighbors int) float64 {
	// (4/3) pi (2h)^3 nd = N  =>  h = 0.5 * (3N / (4 pi nd))^(1/3)
	return 0.5 * math.Cbrt(3*float64(nNeighbors)/(4*math.Pi*nd))
}

// SquarePatch holds the rotating-square-patch configuration of paper §5.1.
type SquarePatch struct {
	// NSide is the per-side 2D particle count; the paper uses 100.
	NSide int
	// NLayers is the number of Z copies; the paper uses 100 (so the full
	// test is 100x100x100 = 1e6 particles).
	NLayers int
	// L is the square side length.
	L float64
	// Omega is the angular velocity (5 rad/s in the paper).
	Omega float64
	// Rho0 is the reference density.
	Rho0 float64
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
	// PressureTerms truncates the double Poisson series (odd terms).
	PressureTerms int
	// SoundSpeed is the weakly-compressible artificial sound speed used to
	// imprint the pressure field through the Tait EOS; customarily
	// ~10 * omega * L.
	SoundSpeed float64
}

// DefaultSquarePatch returns the paper's configuration scaled to about n
// particles (n^(1/3) per side).
func DefaultSquarePatch(n int) SquarePatch {
	side := int(math.Round(math.Cbrt(float64(n))))
	if side < 2 {
		side = 2
	}
	return SquarePatch{
		NSide:         side,
		NLayers:       side,
		L:             1,
		Omega:         5,
		Rho0:          1,
		NNeighbors:    100,
		PressureTerms: 16,
		SoundSpeed:    50, // 10 * omega * L
	}
}

// Pressure evaluates the incompressible-Poisson series pressure of the
// rotating patch at (x, y) in [0, L]^2 (paper §5.1; only odd (m, n) terms
// contribute).
func (sp SquarePatch) Pressure(x, y float64) float64 {
	var p float64
	L := sp.L
	for m := 1; m <= 2*sp.PressureTerms-1; m += 2 {
		mf := float64(m)
		km := mf * math.Pi / L
		sx := math.Sin(km * x)
		for n := 1; n <= 2*sp.PressureTerms-1; n += 2 {
			nf := float64(n)
			kn := nf * math.Pi / L
			coeff := -32 * sp.Omega * sp.Omega / (mf * nf * math.Pi * math.Pi)
			coeff /= km*km + kn*kn
			p += coeff * sx * math.Sin(kn*y)
		}
	}
	return sp.Rho0 * p
}

// Generate builds the particle set, the periodic boundary (Z only), and the
// quantization box. Positions span [0,L]x[0,L]x[0,Lz); velocities rotate
// rigidly about the patch center; the pressure field is imprinted through a
// Tait density perturbation so SPH sees the paper's initial state.
func (sp SquarePatch) Generate() (*part.Set, tree.PBC, sfc.Box) {
	nx, ny, nz := sp.NSide, sp.NSide, sp.NLayers
	dx := sp.L / float64(nx)
	lz := dx * float64(nz)
	n := nx * ny * nz
	ps := part.New(n)

	gamma := 7.0
	b := sp.Rho0 * sp.SoundSpeed * sp.SoundSpeed / gamma
	cellVol := dx * dx * dx
	nd := 1 / cellVol

	i := 0
	for iz := 0; iz < nz; iz++ {
		z := (float64(iz) + 0.5) * dx
		for iy := 0; iy < ny; iy++ {
			y := (float64(iy) + 0.5) * dx
			for ix := 0; ix < nx; ix++ {
				x := (float64(ix) + 0.5) * dx
				ps.ID[i] = int64(i)
				ps.Pos[i] = vec.V3{X: x, Y: y, Z: z}
				// Rigid rotation about the patch center.
				xc := x - sp.L/2
				yc := y - sp.L/2
				ps.Vel[i] = vec.V3{X: sp.Omega * yc, Y: -sp.Omega * xc}
				p0 := sp.Pressure(x, y)
				// Invert Tait: rho = rho0 (1 + P/B)^(1/gamma).
				ratio := 1 + p0/b
				if ratio < 0.1 {
					ratio = 0.1 // guard: extreme negative pressure corner
				}
				rho := sp.Rho0 * math.Pow(ratio, 1/gamma)
				ps.Rho[i] = rho
				ps.Mass[i] = rho * cellVol
				ps.H[i] = hFromDensity(nd, sp.NNeighbors)
				ps.U[i] = 0
				i++
			}
		}
	}
	pbc := tree.PBC{Z: true, L: vec.V3{Z: lz}}
	// The periodic quantization cube must cover the Z period; X/Y use the
	// patch extent (free surface).
	size := math.Max(sp.L, lz)
	box := sfc.Box{Lo: vec.V3{}, Size: size}
	return ps, pbc, box
}

// Evrard holds the Evrard-collapse configuration of paper §5.1: an initially
// static isothermal gas sphere with rho ~ 1/r that collapses under
// self-gravity.
type Evrard struct {
	// N is the requested particle count (the realized count differs
	// slightly for the stretched-lattice sampler).
	N int
	// R and M are the initial radius and mass (both 1 in the paper).
	R, M float64
	// U0 is the initial specific internal energy (0.05 in the paper).
	U0 float64
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
	// RandomSeed < 0 selects the deterministic stretched-lattice sampler;
	// otherwise positions are drawn randomly from the 1/r profile with this
	// seed.
	RandomSeed int64
}

// DefaultEvrard returns the paper's configuration for about n particles.
func DefaultEvrard(n int) Evrard {
	return Evrard{N: n, R: 1, M: 1, U0: 0.05, NNeighbors: 100, RandomSeed: -1}
}

// Density returns the target density profile M/(2 pi R^2 r), clamped at the
// innermost resolved radius.
func (ev Evrard) Density(r float64) float64 {
	if r > ev.R {
		return 0
	}
	rMin := ev.R * 1e-3
	if r < rMin {
		r = rMin
	}
	return ev.M / (2 * math.Pi * ev.R * ev.R * r)
}

// Generate builds the particle set. Equal-mass particles are placed either
// on a radially-stretched lattice (deterministic; maps a uniform lattice
// r -> R (r/R)^(3/2), turning uniform density into the 1/r profile) or by
// random sampling of the cumulative mass M(<r) = M r^2/R^2.
func (ev Evrard) Generate() (*part.Set, tree.PBC, sfc.Box) {
	var pos []vec.V3
	if ev.RandomSeed >= 0 {
		rng := rand.New(rand.NewSource(ev.RandomSeed))
		pos = make([]vec.V3, ev.N)
		for i := range pos {
			r := ev.R * math.Sqrt(rng.Float64())
			cosTh := 2*rng.Float64() - 1
			sinTh := math.Sqrt(1 - cosTh*cosTh)
			phi := 2 * math.Pi * rng.Float64()
			pos[i] = vec.V3{
				X: r * sinTh * math.Cos(phi),
				Y: r * sinTh * math.Sin(phi),
				Z: r * cosTh,
			}
		}
	} else {
		// Stretched lattice: lattice spacing chosen so the unit sphere holds
		// about N points.
		spacing := math.Cbrt(4 * math.Pi / 3 / float64(ev.N))
		half := int(math.Ceil(1/spacing)) + 1
		for ix := -half; ix <= half; ix++ {
			for iy := -half; iy <= half; iy++ {
				for iz := -half; iz <= half; iz++ {
					p := vec.V3{
						X: (float64(ix) + 0.5) * spacing,
						Y: (float64(iy) + 0.5) * spacing,
						Z: (float64(iz) + 0.5) * spacing,
					}
					r := p.Norm()
					if r > 1 || r == 0 {
						continue
					}
					// Radial stretch r -> r^(3/2) (unit sphere units).
					stretched := p.Scale(math.Pow(r, 1.5) / r * ev.R)
					pos = append(pos, stretched)
				}
			}
		}
	}

	n := len(pos)
	if n == 0 {
		panic(fmt.Sprintf("ic: Evrard sampler produced no particles for N=%d", ev.N))
	}
	ps := part.New(n)
	m := ev.M / float64(n)
	for i := range pos {
		ps.ID[i] = int64(i)
		ps.Pos[i] = pos[i]
		ps.Mass[i] = m
		ps.U[i] = ev.U0
		r := pos[i].Norm()
		rho := ev.Density(r)
		ps.Rho[i] = rho
		ps.H[i] = hFromDensity(rho/m, ev.NNeighbors)
	}
	lo, hi := ps.Bounds()
	return ps, tree.PBC{}, sfc.NewBox(lo, hi)
}

// UniformCube fills [0,1)^3 with an n^3 lattice of unit-density equal-mass
// particles — the simplest fixture for SPH unit tests.
func UniformCube(nside, nNeighbors int) (*part.Set, tree.PBC, sfc.Box) {
	n := nside * nside * nside
	ps := part.New(n)
	dx := 1.0 / float64(nside)
	cellVol := dx * dx * dx
	i := 0
	for iz := 0; iz < nside; iz++ {
		for iy := 0; iy < nside; iy++ {
			for ix := 0; ix < nside; ix++ {
				ps.ID[i] = int64(i)
				ps.Pos[i] = vec.V3{
					X: (float64(ix) + 0.5) * dx,
					Y: (float64(iy) + 0.5) * dx,
					Z: (float64(iz) + 0.5) * dx,
				}
				ps.Mass[i] = cellVol // density 1
				ps.Rho[i] = 1
				ps.U[i] = 1
				ps.H[i] = hFromDensity(1/cellVol, nNeighbors)
				i++
			}
		}
	}
	pbc := tree.PBC{X: true, Y: true, Z: true, L: vec.V3{X: 1, Y: 1, Z: 1}}
	return ps, pbc, sfc.Box{Lo: vec.V3{}, Size: 1}
}

// Sedov initializes the Sedov-Taylor point blast: a uniform cube with the
// explosion energy E deposited as internal energy in a kernel-smoothed
// region around the center. An extension test beyond the paper's two cases.
func Sedov(nside, nNeighbors int, e float64) (*part.Set, tree.PBC, sfc.Box) {
	ps, pbc, box := UniformCube(nside, nNeighbors)
	for i := 0; i < ps.NLocal; i++ {
		ps.U[i] = 1e-8
	}
	center := vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
	k := kernel.NewM4()
	h := 2 * ps.H[0]
	// Deposit E with kernel weights over the central region.
	var wsum float64
	weights := make([]float64, ps.NLocal)
	for i := 0; i < ps.NLocal; i++ {
		w := k.W(ps.Pos[i].Sub(center).Norm(), h)
		weights[i] = w
		wsum += w * ps.Mass[i]
	}
	if wsum > 0 {
		for i := 0; i < ps.NLocal; i++ {
			if weights[i] > 0 {
				ps.U[i] += e * weights[i] / wsum
			}
		}
	}
	return ps, pbc, box
}
