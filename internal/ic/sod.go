package ic

import (
	"math"

	"repro/internal/part"
	"repro/internal/sfc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Sod holds the Sod shock tube configuration (Sod 1978): the classic 1D
// Riemann problem — a high-pressure dense left state against a low-pressure
// light right state, initially at rest. The discontinuity decays into a
// rightward shock, a contact discontinuity, and a leftward rarefaction, all
// with exact analytic profiles, making it the standard validation workload
// for a compressible hydro scheme's shock capturing.
type Sod struct {
	// NX is the lattice count along the tube axis x in [0, 1]; the
	// cross-section uses NX/4 cells per axis (minimum 4).
	NX int
	// RhoL, PL are the left state (x < 0.5); RhoR, PR the right state.
	// The classic values are 1, 1 | 0.125, 0.1.
	RhoL, PL, RhoR, PR float64
	// Gamma is the adiabatic index (1.4 classically).
	Gamma float64
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
}

// DefaultSod returns the classic configuration scaled to about n particles.
func DefaultSod(n int) Sod {
	// n = nx * (nx/4)^2 = nx^3/16, so nx = (16 n)^(1/3).
	nx := int(math.Round(math.Cbrt(16 * float64(n))))
	if nx < 8 {
		nx = 8
	}
	return Sod{
		NX:   nx,
		RhoL: 1, PL: 1, RhoR: 0.125, PR: 0.1,
		Gamma: 1.4, NNeighbors: 100,
	}
}

// Generate builds the particle set: a uniform lattice over the tube
// [0,1] x [0,W)^2 with the density contrast carried by per-particle masses
// (the same noise-free-interface idiom as the Kelvin-Helmholtz setup, and
// exact for any RhoL/RhoR ratio). The cross-section is periodic in y and z
// so the flow stays one-dimensional; x ends are free — the tube is run for
// times short enough that end effects cannot reach the wave structure.
func (sd Sod) Generate() (*part.Set, tree.PBC, sfc.Box) {
	nx := sd.NX
	ny := nx / 4
	if ny < 4 {
		ny = 4
	}
	nz := ny
	dx := 1.0 / float64(nx)
	w := float64(ny) * dx
	cellVol := dx * dx * dx

	n := nx * ny * nz
	ps := part.New(n)
	i := 0
	for iz := 0; iz < nz; iz++ {
		z := (float64(iz) + 0.5) * dx
		for iy := 0; iy < ny; iy++ {
			y := (float64(iy) + 0.5) * dx
			for ix := 0; ix < nx; ix++ {
				x := (float64(ix) + 0.5) * dx
				rho, p := sd.RhoL, sd.PL
				if x >= 0.5 {
					rho, p = sd.RhoR, sd.PR
				}
				ps.ID[i] = int64(i)
				ps.Pos[i] = vec.V3{X: x, Y: y, Z: z}
				ps.Mass[i] = rho * cellVol
				ps.Rho[i] = rho
				ps.U[i] = p / ((sd.Gamma - 1) * rho)
				ps.H[i] = hFromDensity(1/cellVol, sd.NNeighbors)
				i++
			}
		}
	}
	pbc := tree.PBC{Y: true, Z: true, L: vec.V3{Y: w, Z: w}}
	// The quantization cube must cover the x extent (1) and the periodic
	// y/z extents (w <= 1).
	box := sfc.Box{Lo: vec.V3{}, Size: 1}
	return ps, pbc, box
}
