package ic

import (
	"math"
	"testing"
)

func TestSodStructure(t *testing.T) {
	sd := DefaultSod(8000)
	ps, pbc, box := sd.Generate()
	if ps.NLocal == 0 {
		t.Fatal("no particles")
	}
	if err := ps.Validate(); err != nil {
		t.Fatalf("invalid particle set: %v", err)
	}
	if pbc.X || !pbc.Y || !pbc.Z {
		t.Fatalf("sod PBC = %+v, want y/z only", pbc)
	}
	if pbc.L.Y <= 0 || pbc.L.Y != pbc.L.Z || pbc.L.Y > 1 {
		t.Fatalf("periodic extents %+v", pbc.L)
	}
	if box.Size != 1 {
		t.Fatalf("box size %g, want 1 (covers the tube axis)", box.Size)
	}
}

// TestSodStates: both half-states carry exactly the configured density
// (via per-particle masses on the uniform lattice) and are in mutual
// pressure disequilibrium with the configured ratio.
func TestSodStates(t *testing.T) {
	sd := DefaultSod(4000)
	ps, _, _ := sd.Generate()

	dx := 1.0 / float64(sd.NX)
	cellVol := dx * dx * dx
	var nL, nR int
	for i := 0; i < ps.NLocal; i++ {
		if ps.Vel[i].Norm() != 0 {
			t.Fatalf("particle %d not at rest: %v", i, ps.Vel[i])
		}
		left := ps.Pos[i].X < 0.5
		wantRho, wantP := sd.RhoL, sd.PL
		if !left {
			wantRho, wantP = sd.RhoR, sd.PR
		}
		if math.Abs(ps.Rho[i]-wantRho) > 1e-12 {
			t.Fatalf("particle %d rho=%g, want %g", i, ps.Rho[i], wantRho)
		}
		if math.Abs(ps.Mass[i]-wantRho*cellVol) > 1e-15 {
			t.Fatalf("particle %d mass=%g, want %g", i, ps.Mass[i], wantRho*cellVol)
		}
		// u = P / ((gamma-1) rho): the lattice encodes the pressure jump.
		wantU := wantP / ((sd.Gamma - 1) * wantRho)
		if math.Abs(ps.U[i]-wantU) > 1e-12 {
			t.Fatalf("particle %d u=%g, want %g", i, ps.U[i], wantU)
		}
		if left {
			nL++
		} else {
			nR++
		}
	}
	if nL != nR {
		t.Fatalf("asymmetric split: %d left vs %d right", nL, nR)
	}

	// Total mass is the exact two-state integral over the tube volume.
	w := float64(sd.NX/4) * dx
	want := (sd.RhoL + sd.RhoR) / 2 * w * w
	if got := ps.TotalMass(); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("total mass %g, want %g", got, want)
	}
}

func TestSodCustomStates(t *testing.T) {
	sd := DefaultSod(2000)
	sd.RhoR, sd.PR = 0.25, 0.3 // a ratio the equal-mass trick cannot tile
	ps, _, _ := sd.Generate()
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ps.NLocal; i++ {
		if ps.Pos[i].X >= 0.5 && math.Abs(ps.Rho[i]-0.25) > 1e-12 {
			t.Fatalf("custom right state density %g", ps.Rho[i])
		}
	}
}
