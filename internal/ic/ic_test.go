package ic

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestSquarePatchCounts(t *testing.T) {
	sp := DefaultSquarePatch(8000) // 20^3
	ps, pbc, box := sp.Generate()
	if ps.NLocal != sp.NSide*sp.NSide*sp.NLayers {
		t.Fatalf("generated %d particles, want %d", ps.NLocal, sp.NSide*sp.NSide*sp.NLayers)
	}
	if !pbc.Z || pbc.X || pbc.Y {
		t.Fatalf("patch PBC = %+v, want Z only", pbc)
	}
	if box.Size <= 0 {
		t.Fatal("degenerate box")
	}
	if err := ps.Validate(); err != nil {
		t.Fatalf("invalid particle set: %v", err)
	}
}

func TestSquarePatchVelocityField(t *testing.T) {
	sp := DefaultSquarePatch(1000)
	ps, _, _ := sp.Generate()
	for i := 0; i < ps.NLocal; i++ {
		x := ps.Pos[i].X - sp.L/2
		y := ps.Pos[i].Y - sp.L/2
		wantVx := sp.Omega * y
		wantVy := -sp.Omega * x
		if math.Abs(ps.Vel[i].X-wantVx) > 1e-12 || math.Abs(ps.Vel[i].Y-wantVy) > 1e-12 {
			t.Fatalf("particle %d velocity %v, want (%g,%g,0)", i, ps.Vel[i], wantVx, wantVy)
		}
		if ps.Vel[i].Z != 0 {
			t.Fatalf("nonzero vz")
		}
	}
}

func TestSquarePatchRigidRotationIsDivergenceFree(t *testing.T) {
	// Rigid rotation: velocity magnitude proportional to distance from axis.
	sp := DefaultSquarePatch(1000)
	ps, _, _ := sp.Generate()
	for i := 0; i < ps.NLocal; i += 17 {
		x := ps.Pos[i].X - sp.L/2
		y := ps.Pos[i].Y - sp.L/2
		r := math.Hypot(x, y)
		v := ps.Vel[i].Norm()
		if math.Abs(v-sp.Omega*r) > 1e-12 {
			t.Fatalf("speed %g at radius %g, want %g", v, r, sp.Omega*r)
		}
	}
}

func TestSquarePatchPressureSymmetry(t *testing.T) {
	sp := DefaultSquarePatch(1000)
	// The series is symmetric under x <-> y.
	for _, xy := range [][2]float64{{0.2, 0.7}, {0.1, 0.35}, {0.44, 0.9}} {
		p1 := sp.Pressure(xy[0], xy[1])
		p2 := sp.Pressure(xy[1], xy[0])
		if math.Abs(p1-p2) > 1e-10*(math.Abs(p1)+1) {
			t.Fatalf("P(%g,%g)=%g != P(%g,%g)=%g", xy[0], xy[1], p1, xy[1], xy[0], p2)
		}
	}
	// Boundary pressure vanishes (sin terms).
	for _, x := range []float64{0, sp.L} {
		if p := sp.Pressure(x, 0.5); math.Abs(p) > 1e-9 {
			t.Fatalf("boundary pressure %g at x=%g", p, x)
		}
	}
}

func TestSquarePatchPressureNegativeSomewhere(t *testing.T) {
	// The test exists because negative pressure drives the tensile
	// instability (paper §5.1); the series must produce negative values.
	sp := DefaultSquarePatch(1000)
	found := false
	for x := 0.05; x < 1; x += 0.1 {
		for y := 0.05; y < 1; y += 0.1 {
			if sp.Pressure(x, y) < 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("pressure field nowhere negative")
	}
}

func TestEvrardMassAndProfile(t *testing.T) {
	ev := DefaultEvrard(5000)
	ps, pbc, _ := ev.Generate()
	if !pbc.None() {
		t.Fatal("Evrard must not be periodic")
	}
	if math.Abs(ps.TotalMass()-ev.M) > 1e-9 {
		t.Fatalf("total mass %g, want %g", ps.TotalMass(), ev.M)
	}
	if err := ps.Validate(); err != nil {
		t.Fatalf("invalid particle set: %v", err)
	}
	// Count particles in radial shells; expect M(<r) ~ r^2.
	counts := make([]int, 4)
	edges := []float64{0.25, 0.5, 0.75, 1.0001}
	for i := 0; i < ps.NLocal; i++ {
		r := ps.Pos[i].Norm()
		for s, e := range edges {
			if r <= e {
				counts[s]++
				break
			}
		}
	}
	total := ps.NLocal
	cum := 0
	for s, e := range edges {
		cum += counts[s]
		wantFrac := e * e // M(<r)/M = (r/R)^2
		if e > 1 {
			wantFrac = 1
		}
		gotFrac := float64(cum) / float64(total)
		if math.Abs(gotFrac-wantFrac) > 0.05 {
			t.Errorf("cumulative mass to r=%.2f: %.3f, want %.3f", e, gotFrac, wantFrac)
		}
	}
}

func TestEvrardRandomSampler(t *testing.T) {
	ev := DefaultEvrard(3000)
	ev.RandomSeed = 12345
	ps, _, _ := ev.Generate()
	if ps.NLocal != 3000 {
		t.Fatalf("random sampler made %d, want 3000", ps.NLocal)
	}
	// All inside the sphere.
	for i := 0; i < ps.NLocal; i++ {
		if ps.Pos[i].Norm() > ev.R+1e-12 {
			t.Fatalf("particle outside sphere at %v", ps.Pos[i])
		}
	}
	// Deterministic for equal seeds.
	ps2, _, _ := ev.Generate()
	if ps.Pos[100] != ps2.Pos[100] {
		t.Fatal("random sampler not reproducible")
	}
}

func TestEvrardInternalEnergy(t *testing.T) {
	ev := DefaultEvrard(1000)
	ps, _, _ := ev.Generate()
	for i := 0; i < ps.NLocal; i++ {
		if ps.U[i] != ev.U0 {
			t.Fatalf("u[%d] = %g, want %g", i, ps.U[i], ev.U0)
		}
		if ps.Vel[i] != (vec.V3{}) {
			t.Fatal("Evrard must start static")
		}
	}
}

func TestEvrardDensityClamp(t *testing.T) {
	ev := DefaultEvrard(100)
	if d := ev.Density(0); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("central density = %g", d)
	}
	if d := ev.Density(2 * ev.R); d != 0 {
		t.Fatalf("density outside sphere = %g", d)
	}
}

func TestUniformCube(t *testing.T) {
	ps, pbc, box := UniformCube(6, 50)
	if ps.NLocal != 216 {
		t.Fatalf("cube count %d", ps.NLocal)
	}
	if !pbc.X || !pbc.Y || !pbc.Z {
		t.Fatal("cube must be fully periodic")
	}
	if box.Size != 1 {
		t.Fatalf("box size %g", box.Size)
	}
	if math.Abs(ps.TotalMass()-1) > 1e-12 {
		t.Fatalf("total mass %g, want 1 (density 1 over unit cube)", ps.TotalMass())
	}
}

func TestSedovEnergyDeposit(t *testing.T) {
	const e = 1.0
	ps, _, _ := Sedov(8, 50, e)
	var total float64
	maxU, cornerU := 0.0, 0.0
	for i := 0; i < ps.NLocal; i++ {
		total += ps.Mass[i] * ps.U[i]
		if ps.U[i] > maxU {
			maxU = ps.U[i]
		}
	}
	cornerU = ps.U[0]
	if math.Abs(total-e-1e-8) > 1e-6 {
		t.Fatalf("deposited energy %g, want ~%g", total, e)
	}
	// Hot center, cold corner.
	if maxU <= 100*cornerU {
		t.Fatalf("blast not centrally concentrated: max %g corner %g", maxU, cornerU)
	}
}

func TestHFromDensity(t *testing.T) {
	// Uniform density 1000/unit^3, 100 neighbors: support sphere of radius
	// 2h must contain 100 particles.
	h := hFromDensity(1000, 100)
	vol := 4.0 / 3.0 * math.Pi * math.Pow(2*h, 3)
	if math.Abs(vol*1000-100) > 1e-9 {
		t.Fatalf("support holds %g particles, want 100", vol*1000)
	}
}
