package ic

import (
	"math"

	"repro/internal/analytic"
	"repro/internal/part"
	"repro/internal/sfc"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Gresho holds the Gresho-Chan vortex configuration (Gresho & Chan 1990):
// a triangular azimuthal velocity profile in exact centrifugal-pressure
// balance, so the flow is a steady state and any evolution is numerical
// error — the standard test of angular-momentum conservation and numerical
// viscosity. The vortex axis is z; the cube is fully periodic (the profile
// is quiescent beyond r = 0.4, well inside the unit cell).
type Gresho struct {
	// NSide is the per-axis lattice count of the unit cube.
	NSide int
	// Rho0 is the uniform density; the balancing pressure scales with it.
	Rho0 float64
	// Gamma converts the pressure profile to specific internal energy.
	Gamma float64
	// NNeighbors sets initial smoothing lengths.
	NNeighbors int
}

// DefaultGresho returns the standard configuration scaled to about n
// particles.
func DefaultGresho(n int) Gresho {
	side := int(math.Round(math.Cbrt(float64(n))))
	if side < 2 {
		side = 2
	}
	return Gresho{NSide: side, Rho0: 1, Gamma: 5.0 / 3.0, NNeighbors: 100}
}

// Generate builds the particle set on an equal-spacing lattice over the
// fully periodic unit cube, with the piecewise-analytic azimuthal velocity
// and its balancing pressure (via analytic.GreshoVPhi/GreshoPressure)
// imprinted about the axis through (0.5, 0.5).
func (gr Gresho) Generate() (*part.Set, tree.PBC, sfc.Box) {
	nside := gr.NSide
	n := nside * nside * nside
	ps := part.New(n)
	dx := 1.0 / float64(nside)
	cellVol := dx * dx * dx
	i := 0
	for iz := 0; iz < nside; iz++ {
		z := (float64(iz) + 0.5) * dx
		for iy := 0; iy < nside; iy++ {
			y := (float64(iy) + 0.5) * dx
			for ix := 0; ix < nside; ix++ {
				x := (float64(ix) + 0.5) * dx
				cx, cy := x-0.5, y-0.5
				r := math.Hypot(cx, cy)
				ps.ID[i] = int64(i)
				ps.Pos[i] = vec.V3{X: x, Y: y, Z: z}
				if r > 0 {
					v := analytic.GreshoVPhi(r)
					ps.Vel[i] = vec.V3{X: -cy / r * v, Y: cx / r * v}
				}
				ps.Mass[i] = gr.Rho0 * cellVol
				ps.Rho[i] = gr.Rho0
				// p scales with rho0, so u = p/((gamma-1) rho) does not.
				ps.U[i] = analytic.GreshoPressure(r) / (gr.Gamma - 1)
				ps.H[i] = hFromDensity(1/cellVol, gr.NNeighbors)
				i++
			}
		}
	}
	pbc := tree.PBC{X: true, Y: true, Z: true, L: vec.V3{X: 1, Y: 1, Z: 1}}
	return ps, pbc, sfc.Box{Lo: vec.V3{}, Size: 1}
}
