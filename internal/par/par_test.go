package par

import (
	"strings"
	"sync"
	"testing"
)

func TestCatcherRethrowsFirstPanicWithWorkerStack(t *testing.T) {
	var c Catcher
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Catch()
			if i == 2 {
				panic("kernel blowup")
			}
		}(i)
	}
	wg.Wait()

	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Rethrow did not panic")
		}
		p, ok := v.(*Panic)
		if !ok {
			t.Fatalf("rethrown value is %T, want *Panic", v)
		}
		if p.Value != "kernel blowup" {
			t.Fatalf("panic value = %v", p.Value)
		}
		if !strings.Contains(p.Error(), "kernel blowup") || !strings.Contains(p.Error(), "goroutine") {
			t.Fatalf("Error() missing value or stack: %q", p.Error())
		}
	}()
	c.Rethrow()
}

func TestCatcherNoopWhenNoPanic(t *testing.T) {
	var c Catcher
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Catch()
		}()
	}
	wg.Wait()
	c.Rethrow() // must not panic
}

func TestCatcherKeepsInnermostStackOnNestedFanOut(t *testing.T) {
	// A nested fan-out wraps the panic once; the outer Catch must pass the
	// existing *Panic through instead of re-wrapping with the outer stack.
	inner := &Panic{Value: "deep", Stack: []byte("inner-stack")}
	var outer Catcher
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer outer.Catch()
		panic(inner)
	}()
	wg.Wait()
	defer func() {
		v := recover()
		if v != inner {
			t.Fatalf("rethrown %v, want the inner *Panic unchanged", v)
		}
	}()
	outer.Rethrow()
}
