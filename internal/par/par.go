// Package par contains the panic-containment primitive shared by the
// goroutine fan-outs in the compute kernels (tree build, neighbor search,
// forces, gravity). A physics blowup — a NaN position feeding an index
// computation, a corrupt neighbor list — must surface as a panic on the
// CALLER's goroutine, where the serving layer can recover it and fail the
// one job, never as an unrecoverable crash of a detached worker goroutine
// that takes the whole process down.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Panic is a panic captured on a worker goroutine, rethrown on the caller's
// goroutine with the worker's original stack preserved.
type Panic struct {
	Value any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("panic: %v\n\nworker goroutine stack:\n%s", p.Value, p.Stack)
}

// Catcher collects the first panic among a group of worker goroutines.
// Each goroutine defers Catch; the goroutine that spawned them calls
// Rethrow after the group joins.
type Catcher struct {
	mu sync.Mutex
	// first is the panic kept for Rethrow; guarded by mu.
	first *Panic
}

// Catch must be deferred directly by each worker goroutine.
func (c *Catcher) Catch() {
	v := recover()
	if v == nil {
		return
	}
	c.mu.Lock()
	if c.first == nil {
		if p, ok := v.(*Panic); ok {
			// Already wrapped by a nested fan-out: keep the innermost stack.
			c.first = p
		} else {
			c.first = &Panic{Value: v, Stack: debug.Stack()}
		}
	}
	c.mu.Unlock()
}

// Rethrow re-panics on the calling goroutine with the first captured panic,
// if any. No-op when every worker returned normally.
func (c *Catcher) Rethrow() {
	c.mu.Lock()
	p := c.first
	c.mu.Unlock()
	if p != nil {
		panic(p)
	}
}
