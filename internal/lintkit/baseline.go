package lintkit

import (
	"encoding/json"
	"fmt"
	"os"
)

// BaselineEntry suppresses one reviewed finding. Every entry must carry a
// justification — the baseline is a record of deliberate exceptions, not a
// dumping ground. Line numbers are deliberately absent: entries match on
// analyzer + file + message so unrelated edits don't invalidate them.
type BaselineEntry struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Message       string `json:"message"`
	Justification string `json:"justification"`
}

// Baseline is the reviewed-suppression file (LINT_BASELINE.json).
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and validates a baseline file. A missing file is an
// empty baseline, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lintkit: baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lintkit: baseline %s: unsupported version %d", path, b.Version)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("lintkit: baseline %s: entry %d is missing analyzer/file/message", path, i)
		}
		if e.Justification == "" {
			return nil, fmt.Errorf("lintkit: baseline %s: entry %d (%s %s) has no justification — every suppression must say why",
				path, i, e.Analyzer, e.File)
		}
	}
	return &b, nil
}

func (e BaselineEntry) key() string { return e.Analyzer + "\x00" + e.File + "\x00" + e.Message }

// Apply splits findings into unbaselined (kept) and suppressed, and returns
// the baseline entries that matched nothing — stale suppressions worth
// deleting.
func (b *Baseline) Apply(findings []Finding) (kept []Finding, suppressed []Finding, unused []BaselineEntry) {
	matched := make([]bool, len(b.Entries))
	index := map[string][]int{}
	for i, e := range b.Entries {
		index[e.key()] = append(index[e.key()], i)
	}
	for _, f := range findings {
		if idxs, ok := index[f.Key()]; ok {
			for _, i := range idxs {
				matched[i] = true
			}
			suppressed = append(suppressed, f)
			continue
		}
		kept = append(kept, f)
	}
	for i, e := range b.Entries {
		if !matched[i] {
			unused = append(unused, e)
		}
	}
	return kept, suppressed, unused
}
