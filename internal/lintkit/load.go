package lintkit

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindModuleRoot walks up from dir to the nearest go.mod and returns the
// root directory and the declared module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		gm := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lintkit: %s has no module line", gm)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lintkit: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Runner loads and type-checks packages of one module and runs analyzers
// over them.
type Runner struct {
	// Dir is the module root. The stdlib source importer resolves module
	// import paths by running `go list` from this directory.
	Dir string
	// Module is the module path declared in go.mod.
	Module string
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
}

// NewRunner locates the module root at or above dir.
func NewRunner(dir string) (*Runner, error) {
	root, module, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	return &Runner{Dir: root, Module: module}, nil
}

// LoadError is a package that failed to parse or type-check; analysis of
// the remaining packages still proceeds.
type LoadError struct {
	Package string
	Err     error
}

func (e LoadError) Error() string { return fmt.Sprintf("%s: %v", e.Package, e.Err) }

// Result is one full lint run.
type Result struct {
	Findings   []Finding
	LoadErrors []LoadError
	// Packages is the number of packages analyzed.
	Packages int
}

// Run expands patterns (`./...`, `dir/...`, or plain directories, relative
// to the module root), type-checks each matched package, and applies every
// analyzer.
func (r *Runner) Run(patterns []string) (*Result, error) {
	dirs, err := r.expand(patterns)
	if err != nil {
		return nil, err
	}
	analyzers := r.Analyzers
	if analyzers == nil {
		analyzers = All()
	}

	// The source importer resolves "repro/..." imports through `go list`,
	// which must run inside the module. build.Default is the context the
	// stdlib importer consults; pinning its Dir makes the run independent
	// of the process working directory.
	build.Default.Dir = r.Dir

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	res := &Result{}
	var findings []Finding
	for _, dir := range dirs {
		pkgPath := r.Module
		if rel, err := filepath.Rel(r.Dir, dir); err == nil && rel != "." {
			pkgPath = r.Module + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			res.LoadErrors = append(res.LoadErrors, LoadError{Package: pkgPath, Err: err})
			continue
		}
		if len(files) == 0 {
			continue
		}
		pkg, info, err := checkPackage(fset, imp, pkgPath, files)
		if err != nil {
			res.LoadErrors = append(res.LoadErrors, LoadError{Package: pkgPath, Err: err})
			continue
		}
		res.Packages++
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				Pkg:      pkg,
				Info:     info,
				Dir:      r.Dir,
				Module:   r.Module,
				findings: &findings,
			}
			if err := a.Run(pass); err != nil {
				res.LoadErrors = append(res.LoadErrors, LoadError{
					Package: pkgPath, Err: fmt.Errorf("analyzer %s: %w", a.Name, err)})
			}
		}
	}
	res.Findings = sortFindings(findings)
	return res, nil
}

// expand maps patterns to package directories (sorted, deduplicated).
func (r *Runner) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(r.Dir, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lintkit: pattern %q: not a directory under the module root", pat)
		}
		if !recursive {
			if hasGoSources(base) {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoSources(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoSources(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// parseDir parses the non-test Go sources of one directory, with comments
// (several analyzers read them: guardedby annotations, fixture wants).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkPackage type-checks one parsed package against the shared importer.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	var soft []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { soft = append(soft, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		if len(soft) > 0 {
			err = fmt.Errorf("%d type errors, first: %w", len(soft), soft[0])
		}
		return nil, nil, err
	}
	return pkg, info, nil
}
