package lintkit

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces documented lock discipline on struct fields.
//
// Fields annotated `// guarded by <mu>` (in the field's doc or line
// comment) must only be accessed in functions that visibly acquire that
// mutex. The check is a syntactic lock-set heuristic, tuned to this
// codebase's conventions:
//
//   - the enclosing function calls <x>.<mu>.Lock() or .RLock() (or plain
//     <mu>.Lock() for a package-level mutex) somewhere in its body;
//   - or the function's name carries the repo's `...Locked` suffix, the
//     documented contract for "caller holds the lock";
//   - or the accessed value was freshly allocated in the same function
//     (constructor initialization precedes sharing).
//
// Anything else is a finding: either a real data race, or a known-safe
// exception to record in the baseline with its justification.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields documented '// guarded by <mu>' must only be accessed under that mutex (or from *Locked helpers)",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardEntry is one annotated field.
type guardEntry struct {
	field string
	mutex string
}

func runGuardedBy(p *Pass) error {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(p, fd, guards)
		}
	}
	return nil
}

// collectGuards scans struct declarations for `guarded by` annotations.
func collectGuards(p *Pass) map[*types.Named][]guardEntry {
	guards := map[*types.Named][]guardEntry{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := p.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards[named] = append(guards[named], guardEntry{field: name.Name, mutex: mu})
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGuardedAccesses(p *Pass, fd *ast.FuncDecl, guards map[*types.Named][]guardEntry) {
	lockedName := strings.HasSuffix(fd.Name.Name, "Locked")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		named := namedOf(selection.Recv())
		if named == nil {
			return true
		}
		entries, ok := guards[named]
		if !ok {
			return true
		}
		for _, e := range entries {
			if e.field != sel.Sel.Name {
				continue
			}
			if lockedName {
				continue
			}
			if locksMutex(p, fd.Body, e.mutex) {
				continue
			}
			if freshlyAllocated(p, fd.Body, sel.X, named) {
				continue
			}
			p.Reportf(sel.Pos(),
				"field %s.%s is documented 'guarded by %s' but %s accesses it without acquiring %s (and is not a *Locked helper)",
				named.Obj().Name(), e.field, e.mutex, fd.Name.Name, e.mutex)
		}
		return true
	})
}

// locksMutex reports a visible <...>.<mu>.Lock() / .RLock() (or bare
// <mu>.Lock()) call anywhere in the function body.
func locksMutex(p *Pass, body *ast.BlockStmt, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			if x.Name == mutex {
				found = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == mutex {
				found = true
			}
		}
		return true
	})
	return found
}

// freshlyAllocated reports whether base is a local variable initialized in
// this function from a composite literal or new(T) — constructor-time
// access before the value is shared needs no lock.
func freshlyAllocated(p *Pass, body *ast.BlockStmt, base ast.Expr, named *types.Named) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || p.Info.Defs[lid] != obj || i >= len(as.Rhs) {
				continue
			}
			if isFreshAlloc(p, as.Rhs[i]) {
				fresh = true
			}
		}
		return true
	})
	return fresh
}

func isFreshAlloc(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		return isBuiltin(p.Info, e, "new")
	}
	return false
}
