package lintkit

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ObsNames enforces the internal/obs metric naming scheme at every
// Registry constructor call, and the frozen-name rule on trace slice
// emission.
//
// The telemetry surface (/metricsz Prometheus exposition, /statusz
// digests, the smoke tests that assert on family names) treats metric
// names as API. The conventions are Prometheus's: counters end `_total`,
// latency/size histograms end `_seconds`/`_bytes` (base units), and
// metric/label NAMES are compile-time constants so the family space is
// statically known — dynamic names are unbounded-cardinality bugs.
//
// The trace export surface (GET /v1/jobs/{id}/trace, -trace-out) obeys the
// same discipline: every category passed to Perfetto.Slice/SliceData must
// be a compile-time constant, and Slice names too — slice names carried by
// recorded data must go through SliceData, so a grep for the constants
// enumerates the static slice vocabulary.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "obs Registry metric names must be constant and follow the suffix scheme (counters _total; histograms _seconds/_bytes); " +
		"label names must be constants; trace Slice categories and names must be constants (SliceData for data-carried names)",
	Run: runObsNames,
}

func runObsNames(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObjOf(p.Info, call)
			switch {
			case fn == nil:
			case isRegistryMethod(p, fn):
				checkMetricCall(p, call, fn.Name())
			case isPerfettoMethod(p, fn):
				checkSliceCall(p, call, fn.Name())
			}
			return true
		})
	}
	return nil
}

// isRegistryMethod reports whether fn is Counter/Gauge/Histogram on the
// obs Registry.
func isRegistryMethod(p *Pass, fn *types.Func) bool {
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Name() != "Registry" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == p.Module+"/internal/obs" || pkg.Name() == "obs")
}

func checkMetricCall(p *Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	name, constant := constString(p, call.Args[0])
	if !constant {
		p.Reportf(call.Args[0].Pos(),
			"%s metric name must be a compile-time constant string (the family space must be statically known)", kind)
	} else {
		switch kind {
		case "Counter":
			if !strings.HasSuffix(name, "_total") {
				p.Reportf(call.Args[0].Pos(),
					"counter %q must end in _total (Prometheus counter convention; rate() and dashboards key on it)", name)
			}
		case "Histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				p.Reportf(call.Args[0].Pos(),
					"histogram %q must end in _seconds or _bytes (base-unit convention)", name)
			}
		case "Gauge":
			if strings.HasSuffix(name, "_total") {
				p.Reportf(call.Args[0].Pos(),
					"gauge %q ends in _total: the counter suffix on a gauge misleads rate()-style queries", name)
			}
		}
	}

	// Label-name arguments: Counter(name, help, labels...) and
	// Gauge(name, help, labels...) start labels at arg 2; Histogram(name,
	// help, buckets, labels...) at arg 3.
	labelStart := 2
	if kind == "Histogram" {
		labelStart = 3
	}
	if call.Ellipsis.IsValid() {
		p.Reportf(call.Ellipsis,
			"%s label names must be spelled as constant strings, not spread from a slice (cardinality must be statically visible)", kind)
		return
	}
	for i := labelStart; i < len(call.Args); i++ {
		if _, ok := constString(p, call.Args[i]); !ok {
			p.Reportf(call.Args[i].Pos(),
				"%s label name must be a compile-time constant string (label names are schema, not data)", kind)
		}
	}
}

// isPerfettoMethod reports whether fn is Slice/SliceData on the trace
// Perfetto builder.
func isPerfettoMethod(p *Pass, fn *types.Func) bool {
	switch fn.Name() {
	case "Slice", "SliceData":
	default:
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Name() != "Perfetto" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == p.Module+"/internal/trace" || pkg.Name() == "trace")
}

// checkSliceCall enforces the frozen-name rule on trace slice emission:
// Slice(cat, name, ...) takes two constants; SliceData(cat, name, ...)
// requires only the category constant — its name is recorded data.
func checkSliceCall(p *Pass, call *ast.CallExpr, kind string) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := constString(p, call.Args[0]); !ok {
		p.Reportf(call.Args[0].Pos(),
			"%s trace category must be a compile-time constant string (categories are frozen API, like metric families)", kind)
	}
	if kind == "Slice" && len(call.Args) > 1 {
		if _, ok := constString(p, call.Args[1]); !ok {
			p.Reportf(call.Args[1].Pos(),
				"Slice name must be a compile-time constant string (use SliceData when the name comes from recorded data)")
		}
	}
}

// constString resolves an expression to its constant string value.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
