package lintkit

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture runs one analyzer over the fixture package at
// internal/lintkit/testdata/src/<name> and checks its findings against the
// `// want "substring"` comments in the fixture sources: every finding must
// match a want on its line, and every want must be matched by a finding.
// Fixtures are real type-checked Go (they may import module packages such
// as internal/par), so the analyzers see the same type information the
// production driver does.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	dir := filepath.Join(root, "internal", "lintkit", "testdata", "src", name)
	build.Default.Dir = root
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go sources", dir)
	}
	pkgPath := module + "/internal/lintkit/testdata/src/" + name
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, info, err := checkPackage(fset, imp, pkgPath, files)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}
	var findings []Finding
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		Dir:      dir,
		Module:   module,
		findings: &findings,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	findings = sortFindings(findings)

	wants := collectWants(fset, files)
	for _, f := range findings {
		if !wants.match(f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.substr)
	}
}

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// want is one expectation parsed from a fixture comment: a finding on this
// file:line whose message contains substr.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

type wantSet struct{ wants []*want }

func collectWants(fset *token.FileSet, files []*ast.File) *wantSet {
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					ws.wants = append(ws.wants, &want{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: m[1],
					})
				}
			}
		}
	}
	return ws
}

func (ws *wantSet) match(f Finding) bool {
	ok := false
	for _, w := range ws.wants {
		if w.line == f.Line && w.file == filepath.Base(f.File) && strings.Contains(f.Message, w.substr) {
			w.matched = true
			ok = true
		}
	}
	return ok
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		a   *Analyzer
		dir string
	}{
		{HashCover, "hashcover"},
		{DetMarshal, "detmarshal"},
		{GoCatcher, "gocatcher"},
		{GuardedBy, "guardedby"},
		{ObsNames, "obsnames"},
		{ErrCodes, "errcodes"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) { runFixture(t, c.a, c.dir) })
	}
}
