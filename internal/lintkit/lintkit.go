// Package lintkit is the project-native static-analysis driver behind
// cmd/sphexa-lint. Eight PRs in, the system's correctness rests on
// conventions no general-purpose tool checks: canonical-hash coverage of
// spec structs, deterministic marshaling on cache-identity paths, panic
// containment of compute fan-outs via internal/par.Catcher, the closed /v1
// error-code registry, and the obs metric naming scheme. Each analyzer in
// this package mechanically enforces one of those invariants at analysis
// time, so the bug classes that produced incident PRs (a field added to
// JobSpec but missed by the hash, a bare `go func` taking the server down)
// become lint errors instead of runtime discoveries.
//
// The driver is dependency-free: stdlib go/parser + go/types with the
// source importer. It type-checks the module's packages and runs every
// registered analyzer over each, reporting findings as
// `file:line:col: [analyzer] message`. A reviewed-suppression baseline
// (LINT_BASELINE.json, every entry carrying a justification) silences
// intentionally-kept sites; any unbaselined finding is a non-zero exit.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Version identifies the tool build; bump on analyzer or schema changes so
// the contract smoke can pin expectations.
const Version = "1.0.0"

// Finding is one analyzer report. File is relative to the module root
// (slash-separated) when the position is inside it. The JSON field names
// are a stable schema — cmd/sphexa-lint -json emits them verbatim and the
// driver test pins them.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Key is the suppression identity of a finding. Line numbers drift with
// unrelated edits, so the baseline matches on analyzer + file + message.
func (f Finding) Key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one registered invariant check.
type Analyzer struct {
	// Name labels findings and baseline entries (stable, kebab-free).
	Name string
	// Doc is the one-line invariant statement printed by -list.
	Doc string
	// Run inspects one type-checked package and reports via pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the registered analyzers, in stable order. cmd/sphexa-smoke
// prints this list so a silently-empty registry fails the contract smoke.
func All() []*Analyzer {
	return []*Analyzer{
		DetMarshal,
		ErrCodes,
		GoCatcher,
		GuardedBy,
		HashCover,
		ObsNames,
	}
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg and Info are the type-checked package. Imported packages loaded
	// by the source importer share Fset, so cross-package positions (e.g. a
	// hashed struct's field declared in another package) resolve correctly.
	Pkg  *types.Package
	Info *types.Info
	// Module is the module path ("repro"); analyzers use it to keep their
	// checks inside the tree they can fix.
	Dir    string // module root directory (for relativizing positions)
	Module string

	findings *[]Finding
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.Dir != "" {
		if rel, err := filepath.Rel(p.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sortFindings orders findings by file, line, column, analyzer, message and
// drops exact duplicates (the same cross-package struct can be reached from
// several passes).
func sortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// --- Small shared AST/type helpers used by several analyzers ---------------

// funcObjOf resolves a call's callee to its *types.Func, if any (plain
// function, method value, or selector call).
func funcObjOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the named function of the named package
// (matched by full import-path suffix, so "encoding/json".Marshal matches
// pkgPath "encoding/json").
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isBuiltin reports whether the call invokes the named builtin (e.g.
// append, recover).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == name
	}
	return false
}

// recvNamed returns the (pointer-stripped) named receiver type of a method.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedOf strips pointers and returns the named type of t, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// declOfFuncs indexes the pass's function declarations by their type
// objects, so analyzers can follow a call to its body within the package.
func declOfFuncs(p *Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// inspectStmtsShallow walks the statements of a block without descending
// into nested function literals, calling visit for every node reached.
func inspectStmtsShallow(body *ast.BlockStmt, visit func(n ast.Node) bool) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
}

// containsIdentObj reports whether the expression subtree mentions an
// identifier resolving to obj.
func containsIdentObj(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
