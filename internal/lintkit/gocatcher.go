package lintkit

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoCatcher enforces panic containment on goroutine launches in the
// compute and serving fan-out packages.
//
// PR 7's incident: one NaN-poisoned run panicked on a detached worker
// goroutine inside the force fan-out and took the whole serving process
// down — every in-flight job with it. The fix was internal/par.Catcher:
// workers defer Catch, the spawner rethrows on its own goroutine, and the
// serving layer recovers there and fails the one job. This analyzer makes
// that pattern mandatory: inside the fan-out packages, every `go`
// statement must launch a body with panic containment — a deferred
// par.Catcher.Catch, a deferred recover() literal, or a deferred
// same-package function that recovers. Named goroutine bodies are chased
// one level within the package; bodies the analyzer cannot see are
// findings to fix or baseline, not silent passes.
var GoCatcher = &Analyzer{
	Name: "gocatcher",
	Doc:  "go statements in compute/fan-out packages must contain panics (defer par.Catcher.Catch or recover) so one bad run cannot crash the process",
	Run:  runGoCatcher,
}

// goCatcherScope is the set of package names under the analyzer's
// contract: the compute fan-outs (par, tree, sph, gravity, simmpi, core,
// sched) and the serving layer that launches workers and collectors.
var goCatcherScope = map[string]bool{
	"par":     true,
	"tree":    true,
	"sph":     true,
	"gravity": true,
	"simmpi":  true,
	"core":    true,
	"sched":   true,
	"server":  true,
}

func runGoCatcher(p *Pass) error {
	if !goCatcherScope[p.Pkg.Name()] {
		return nil
	}
	decls := declOfFuncs(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, g, decls)
			return true
		})
	}
	return nil
}

func checkGoStmt(p *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if !bodyContains(p, fun.Body, decls, 0) {
			p.Reportf(g.Pos(),
				"goroutine body has no panic containment: defer par.Catcher.Catch (or a recover) as its first statements, or a worker panic kills the process")
		}
	default:
		fn := funcObjOf(p.Info, g.Call)
		if fn == nil {
			p.Reportf(g.Pos(), "go statement launches an unresolvable callee; route it through par.Catcher")
			return
		}
		decl, ok := decls[fn]
		if !ok {
			p.Reportf(g.Pos(),
				"go %s launches a goroutine whose body is outside this package: the analyzer cannot prove panic containment; wrap it in a func literal with defer par.Catcher.Catch (or recover)",
				fn.Name())
			return
		}
		if !bodyContains(p, decl.Body, decls, 0) {
			p.Reportf(g.Pos(),
				"go %s launches a goroutine without panic containment: %s must defer par.Catcher.Catch or a recover, or a panic in it kills the process",
				fn.Name(), fn.Name())
		}
	}
}

// bodyContains reports whether the function body installs panic
// containment: a deferred par.Catcher.Catch, a deferred literal that
// recovers, or a deferred same-package function that recovers (chased to
// bounded depth).
func bodyContains(p *Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, depth int) bool {
	if body == nil || depth > 2 {
		return false
	}
	contained := false
	inspectStmtsShallow(body, func(n ast.Node) bool {
		if contained {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.FuncLit:
			if containsRecover(p, fun.Body) {
				contained = true
			}
		default:
			fn := funcObjOf(p.Info, d.Call)
			if fn == nil {
				return true
			}
			if isCatcherCatch(p, fn) {
				contained = true
				return false
			}
			if decl, ok := decls[fn]; ok && decl.Body != nil && containsRecover(p, decl.Body) {
				contained = true
			}
		}
		return true
	})
	return contained
}

// isCatcherCatch reports whether fn is (*par.Catcher).Catch — matched by
// receiver type name and package path suffix so the check holds for the
// real internal/par from any importing package.
func isCatcherCatch(p *Pass, fn *types.Func) bool {
	if fn.Name() != "Catch" {
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Name() != "Catcher" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == p.Module+"/internal/par" || strings.HasSuffix(pkg.Path(), "/par") || pkg.Name() == "par")
}

// containsRecover reports a direct recover() call in the body, outside
// nested function literals (where it would not stop this goroutine's
// panic).
func containsRecover(p *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectStmtsShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p.Info, call, "recover") {
			found = true
		}
		return true
	})
	// A deferred literal inside this body that recovers also contains the
	// panic (the common `defer func(){ if v := recover(); ... }()` shape
	// nested one level down, e.g. a helper that installs its own guard).
	if !found {
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			d, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				if litHasRecover(p, lit.Body) {
					found = true
				}
			}
			return true
		})
	}
	return found
}

func litHasRecover(p *Pass, body *ast.BlockStmt) bool {
	found := false
	inspectStmtsShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p.Info, call, "recover") {
			found = true
		}
		return true
	})
	return found
}
