package lintkit

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCodes enforces the closed /v1 error-code registry.
//
// The structured error envelope (`{"error":{code,...}}`) promises stable,
// documented codes: clients switch on them, the README tables them, and
// pkg/client surfaces them in *APIError. A handler inventing a code inline
// ("writeError(w, 400, \"weird_edge\", ...)") ships an undocumented API
// contract. This analyzer requires every code argument reaching the error
// writer to be one of the package-level `Code*` string constants — the
// declared registry — and chases helper functions (a parameter forwarded
// into the code slot makes that parameter a checked slot at every call
// site, transitively).
var ErrCodes = &Analyzer{
	Name: "errcodes",
	Doc:  "error-envelope codes must come from the declared Code* constant registry (stable /v1 error codes)",
	Run:  runErrCodes,
}

func runErrCodes(p *Pass) error {
	// Scoped to the serving package: that is where the envelope is written.
	if p.Pkg.Name() != "server" {
		return nil
	}
	decls := declOfFuncs(p)

	// codeSlots maps a function to the set of parameter indices that flow
	// into an error-code position. Seeded by functions with a string
	// parameter literally named "code" (the writeError convention), then
	// extended to fixpoint through forwarding helpers.
	codeSlots := map[*types.Func]map[int]bool{}
	paramIndex := func(fn *types.Func, obj types.Object) int {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return -1
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return i
			}
		}
		return -1
	}
	for fn := range decls {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			prm := sig.Params().At(i)
			if prm.Name() == "code" && types.Identical(prm.Type(), types.Typ[types.String]) {
				if codeSlots[fn] == nil {
					codeSlots[fn] = map[int]bool{}
				}
				codeSlots[fn][i] = true
			}
		}
	}
	if len(codeSlots) == 0 {
		return nil
	}

	// Fixpoint: a parameter passed into a code slot becomes a code slot of
	// its own function.
	for changed := true; changed; {
		changed = false
		forEachCall(p, func(enclosing *types.Func, call *ast.CallExpr) {
			callee := funcObjOf(p.Info, call)
			slots, ok := codeSlots[callee]
			if !ok || enclosing == nil {
				return
			}
			for i := range slots {
				if i >= len(call.Args) {
					continue
				}
				id, ok := ast.Unparen(call.Args[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil {
					continue
				}
				if j := paramIndex(enclosing, obj); j >= 0 && !codeSlots[enclosing][j] {
					if codeSlots[enclosing] == nil {
						codeSlots[enclosing] = map[int]bool{}
					}
					codeSlots[enclosing][j] = true
					changed = true
				}
			}
		})
	}

	// Final pass: every argument in a code slot must be a Code* constant
	// or a forwarded parameter that is itself a checked slot.
	forEachCall(p, func(enclosing *types.Func, call *ast.CallExpr) {
		callee := funcObjOf(p.Info, call)
		slots, ok := codeSlots[callee]
		if !ok {
			return
		}
		for i := range slots {
			if i >= len(call.Args) {
				continue
			}
			arg := ast.Unparen(call.Args[i])
			if isCodeConst(p, arg) {
				continue
			}
			if id, ok := arg.(*ast.Ident); ok && enclosing != nil {
				if obj := p.Info.Uses[id]; obj != nil {
					if j := paramIndex(enclosing, obj); j >= 0 && codeSlots[enclosing][j] {
						continue // forwarded: checked at this function's call sites
					}
				}
			}
			p.Reportf(arg.Pos(),
				"error code argument %s is not a declared Code* constant: /v1 error codes are a closed, documented registry — add a constant (and document it) instead of inventing a code inline",
				types.ExprString(arg))
		}
	})
	return nil
}

// isCodeConst reports whether e resolves to a package-level string
// constant named Code*.
func isCodeConst(p *Pass, e ast.Expr) bool {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[e.Sel]
	default:
		return false
	}
	c, ok := obj.(*types.Const)
	if !ok || !strings.HasPrefix(c.Name(), "Code") {
		return false
	}
	// Package-level: its parent scope is the package scope.
	return c.Pkg() != nil && c.Parent() == c.Pkg().Scope()
}

// forEachCall visits every call expression in the pass, with the enclosing
// package-level function (nil inside package-level variable initializers).
func forEachCall(p *Pass, visit func(enclosing *types.Func, call *ast.CallExpr)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enclosing, _ := p.Info.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					visit(enclosing, call)
				}
				return true
			})
		}
	}
}
