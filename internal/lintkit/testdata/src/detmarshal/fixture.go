// Package detmarshal is the detmarshal fixture: map ranges feeding output
// sinks without a sort are findings; the collect-keys-then-sort idiom is
// clean.
package detmarshal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// direct writes inside the loop body: shape 1.
func direct(w io.Writer, m map[string]int) {
	for k, v := range m { // want "writes to fmt.Fprintf inside the loop body"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// buffered hits a writer-shaped method sink.
func buffered(m map[string]bool) string {
	var b bytes.Buffer
	for k := range m { // want "writes to (Buffer).WriteString"
		b.WriteString(k)
	}
	return b.String()
}

// collected appends to a slice that later reaches json.Marshal unsorted:
// shape 2.
func collected(m map[string]int) ([]byte, error) {
	var keys []string
	for k := range m { // want "reaches json.Marshal without a sort"
		keys = append(keys, k)
	}
	return json.Marshal(keys)
}

// rangedOut reaches the sink by being ranged over with a sink in the body.
func rangedOut(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m { // want "reaches fmt.Fprintln without a sort"
		keys = append(keys, k)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// sortedIdiom is the codebase's sanctioned pattern: collect, sort, emit.
func sortedIdiom(m map[string]int) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return json.Marshal(keys)
}
