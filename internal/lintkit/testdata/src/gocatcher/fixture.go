// Package sph is the gocatcher fixture; the package name puts it inside the
// analyzer's compute fan-out scope.
package sph

import (
	"sync"

	"repro/internal/par"
)

// fanOutContained is the sanctioned pattern: workers defer Catch, the
// spawner rethrows after the join.
func fanOutContained(n int) {
	var wg sync.WaitGroup
	var c par.Catcher
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Catch()
			work()
		}()
	}
	wg.Wait()
	c.Rethrow()
}

// fanOutBare launches workers with no containment at all.
func fanOutBare(n int) {
	for i := 0; i < n; i++ {
		go func() { // want "no panic containment"
			work()
		}()
	}
}

// recovered contains the panic with a deferred recovering literal.
func recovered() {
	go func() {
		defer func() { _ = recover() }()
		work()
	}()
}

// namedBare launches a named same-package function whose body has no
// containment.
func namedBare() {
	go work() // want "without panic containment"
}

// namedContained launches a named function that installs its own guard.
func namedContained() {
	go guardedWork()
}

// unresolvable launches through a function value the analyzer cannot chase.
func unresolvable(f func()) {
	go f() // want "unresolvable callee"
}

func guardedWork() {
	defer func() { _ = recover() }()
	work()
}

func work() {}
