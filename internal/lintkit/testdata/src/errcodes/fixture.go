// Package server is the errcodes fixture; the package name puts it in the
// analyzer's scope. Arguments flowing into a parameter named "code" must be
// declared package-level Code* constants, chased through forwarding
// helpers.
package server

import "fmt"

// The declared registry.
const (
	CodeInvalid = "invalid_argument"
	CodeGone    = "gone"
)

// writeError is the seed: its string parameter is literally named "code".
func writeError(status int, code, message string) {
	_ = fmt.Sprintf("%d %s %s", status, code, message)
}

func direct() {
	writeError(400, CodeInvalid, "bad argument")
	writeError(410, "made_up_code", "oops") // want "not a declared Code"
}

// forward passes its parameter into the code slot, so the parameter becomes
// a checked slot at forward's own call sites.
func forward(status int, c string) {
	writeError(status, c, "forwarded")
}

func viaHelper() {
	forward(410, CodeGone)
	forward(404, "nope") // want "not a declared Code"
}

func localVariable() {
	c := "dynamic"
	writeError(500, c, "from a local") // want "not a declared Code"
}
