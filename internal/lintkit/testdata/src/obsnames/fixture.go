// Package obsnames is the obsnames fixture: metric and label names on the
// obs Registry constructors must be compile-time constants following the
// Prometheus suffix scheme.
package obsnames

import "repro/internal/obs"

var dynamicLabel = "route"

func register(r *obs.Registry, suffix string) {
	r.Counter("jobs_total", "completed jobs", "state")
	r.Counter("jobs_started", "jobs started")     // want "must end in _total"
	r.Counter("errs_"+suffix, "errors by suffix") // want "metric name must be a compile-time constant"
	r.Gauge("queue_depth", "current queue depth")
	r.Gauge("queue_depth_total", "misleading") // want "ends in _total"
	r.Histogram("latency_seconds", "latency", nil, "route")
	r.Histogram("latency", "latency", nil)        // want "must end in _seconds or _bytes"
	r.Counter("hits_total", "hits", dynamicLabel) // want "label name must be a compile-time constant"
}

func spread(r *obs.Registry, labels []string) {
	r.Counter("spread_total", "spread labels", labels...) // want "not spread from a slice"
}
