// Package obsnames is the obsnames fixture: metric and label names on the
// obs Registry constructors must be compile-time constants following the
// Prometheus suffix scheme, and trace slice categories/names must be
// constants (SliceData for names carried by recorded data).
package obsnames

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

var dynamicLabel = "route"

func register(r *obs.Registry, suffix string) {
	r.Counter("jobs_total", "completed jobs", "state")
	r.Counter("jobs_started", "jobs started")     // want "must end in _total"
	r.Counter("errs_"+suffix, "errors by suffix") // want "metric name must be a compile-time constant"
	r.Gauge("queue_depth", "current queue depth")
	r.Gauge("queue_depth_total", "misleading") // want "ends in _total"
	r.Histogram("latency_seconds", "latency", nil, "route")
	r.Histogram("latency", "latency", nil)        // want "must end in _seconds or _bytes"
	r.Counter("hits_total", "hits", dynamicLabel) // want "label name must be a compile-time constant"
}

func spread(r *obs.Registry, labels []string) {
	r.Counter("spread_total", "spread labels", labels...) // want "not spread from a slice"
}

func emit(p *trace.Perfetto, phase string) {
	p.Slice(trace.CatPhase, "compute", 1, 0, 0, 1, nil)
	p.Slice("cat-"+phase, "compute", 1, 0, 0, 1, nil) // want "trace category must be a compile-time constant"
	p.Slice(trace.CatPhase, phase, 1, 0, 0, 1, nil)   // want "Slice name must be a compile-time constant"
	p.SliceData(trace.CatLifecycle, phase, 0, 0, 0, 1, nil)
	p.SliceData(phase, "queue-wait", 0, 0, 0, 1, nil) // want "trace category must be a compile-time constant"
}
