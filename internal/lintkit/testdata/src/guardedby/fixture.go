// Package guardedby is the guardedby fixture: fields annotated
// `guarded by <mu>` must only be touched under that mutex, from *Locked
// helpers, or during constructor initialization.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc holds the lock: clean.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// read touches the field with no visible lock acquisition.
func (c *counter) read() int {
	return c.n // want "without acquiring mu"
}

// snapshotLocked carries the caller-holds-the-lock suffix: clean.
func (c *counter) snapshotLocked() int { return c.n }

// newCounter initializes a freshly allocated value before sharing: clean.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}
