// Package hashcover is the hashcover fixture: Spec is a hash root (its
// CanonicalHash method JSON-marshals the receiver and SHA-256-sums the
// bytes), so every field in its JSON closure must be hash-visible.
package hashcover

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Sub is reached through Spec's JSON closure, so its fields are checked too.
type Sub struct {
	OK  int `json:"ok"`
	Bad int // want "has no explicit json name tag"
}

// Opaque has a custom marshaler: the encoder never reflects over its
// fields, so the unexported field is fine.
type Opaque struct {
	raw string
}

func (o Opaque) MarshalJSON() ([]byte, error) { return json.Marshal(o.raw) }

// Spec is the hash root.
type Spec struct {
	Name   string `json:"name"`
	Steps  int    // want "has no explicit json name tag"
	hidden int    // want "invisible to encoding/json"
	Skip   int    `json:"-"` // want "excluded from the canonical encoding"
	Nested Sub    `json:"nested"`
	Elems  []Sub  `json:"elems"`
	Opaque Opaque `json:"opaque"`
}

// CanonicalHash makes Spec a hash root: json.Marshal + sha256.Sum256.
func (s Spec) CanonicalHash() string {
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// use silences the unused-field vet on hidden.
func (s Spec) use() int { return s.hidden }
