package lintkit

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// HashCover enforces canonical-hash coverage of spec structs.
//
// Every content-addressed identity in this codebase (scenario.Spec,
// scenario.JobSpec, experiments.Sweep, experiments.ScalingSweep, the
// cluster analysis spec) is hashed by JSON-marshaling its canonical form
// and SHA-256-ing the bytes. A field that encoding/json does not emit —
// unexported, tagged `json:"-"`, or added without an explicit name tag —
// silently never reaches the hash: two different jobs collide in the
// content-addressed result cache and one serves the other's bytes.
//
// The analyzer finds "hash roots": named struct types with a method whose
// name contains "Hash" and whose body calls both json.Marshal and a
// crypto Sum function. It then walks the JSON-encoding closure of each
// root (embedded structs, named struct fields, slice/map/pointer elements,
// stopping at custom marshalers and at types outside this module) and
// requires every field to be exported and carry an explicit json name tag.
var HashCover = &Analyzer{
	Name: "hashcover",
	Doc:  "every field of a canonical-hashed struct must be covered by the canonical JSON encoding (exported, explicit json tag, not \"-\")",
	Run:  runHashCover,
}

func runHashCover(p *Pass) error {
	seen := map[*types.Named]bool{}
	for _, root := range hashRoots(p) {
		checkHashedType(p, root, root, seen)
	}
	return nil
}

// hashRoots returns the receiver types of hash methods declared in this
// package: a method named *Hash* whose body calls both json.Marshal and a
// crypto/* Sum function.
func hashRoots(p *Pass) []*types.Named {
	var roots []*types.Named
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !strings.Contains(fd.Name.Name, "Hash") {
				continue
			}
			var marshals, sums bool
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObjOf(p.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg().Path() == "encoding/json" && strings.HasPrefix(fn.Name(), "Marshal") {
					marshals = true
				}
				if strings.HasPrefix(fn.Pkg().Path(), "crypto/") && strings.HasPrefix(fn.Name(), "Sum") {
					sums = true
				}
				return true
			})
			if !marshals || !sums {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				if named := recvNamed(fn); named != nil {
					roots = append(roots, named)
				}
			}
		}
	}
	return roots
}

// checkHashedType walks the JSON-encoding closure of named and reports any
// field invisible to the canonical encoding.
func checkHashedType(p *Pass, root, named *types.Named, seen map[*types.Named]bool) {
	if named == nil || seen[named] {
		return
	}
	seen[named] = true
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	// Only check structs this module owns; stdlib and external types are
	// not ours to fix (and typically custom-marshal anyway).
	path := obj.Pkg().Path()
	if path != p.Module && !strings.HasPrefix(path, p.Module+"/") && path != p.Pkg.Path() {
		return
	}
	if hasCustomMarshaler(named) {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		tag := reflect.StructTag(st.Tag(i))
		jsonTag, hasTag := tag.Lookup("json")
		name, _, _ := strings.Cut(jsonTag, ",")
		switch {
		case !field.Exported():
			p.Reportf(field.Pos(),
				"unexported field %s of canonical-hashed struct %s is invisible to encoding/json: it never reaches the hash, so specs differing in it collide in the content-addressed cache",
				field.Name(), named.Obj().Name())
			continue
		case name == "-":
			p.Reportf(field.Pos(),
				"field %s of canonical-hashed struct %s is excluded from the canonical encoding (json:\"-\"): it never reaches the hash",
				field.Name(), named.Obj().Name())
			continue
		case field.Embedded() && !hasTag:
			// Inlined embedding (JobSpec embedding Spec) is the one sanctioned
			// untagged form; its fields are checked through the recursion below.
		case !hasTag || name == "":
			p.Reportf(field.Pos(),
				"field %s of canonical-hashed struct %s has no explicit json name tag: the canonical encoding must pin wire names, or renames silently re-key every stored result",
				field.Name(), named.Obj().Name())
		}
		for _, elem := range elementStructs(field.Type()) {
			checkHashedType(p, root, elem, seen)
		}
	}
}

// hasCustomMarshaler reports whether T or *T declares its own JSON or text
// marshaling (the encoder then never reflects over the fields).
func hasCustomMarshaler(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "MarshalJSON", "MarshalText":
				return true
			}
		}
	}
	return false
}

// elementStructs unwraps pointers, slices, arrays, and map values down to
// the named struct types the JSON encoder would descend into.
func elementStructs(t types.Type) []*types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Map:
			t = u.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			return []*types.Named{named}
		}
	}
	return nil
}
