package lintkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAllAnalyzers(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("All() = %d analyzers, the suite contract requires at least 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestFindingJSONSchema pins the -json field names: downstream tooling
// parses them, so a rename is a breaking change that must be deliberate.
func TestFindingJSONSchema(t *testing.T) {
	b, err := json.Marshal(Finding{Analyzer: "a", File: "f.go", Line: 1, Col: 2, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"a","file":"f.go","line":1,"col":2,"message":"m"}`
	if string(b) != want {
		t.Fatalf("Finding JSON schema drifted:\n got %s\nwant %s", b, want)
	}
}

func TestBaselineApply(t *testing.T) {
	bl := &Baseline{Version: 1, Entries: []BaselineEntry{
		{Analyzer: "gocatcher", File: "a.go", Message: "msg one", Justification: "reviewed"},
		{Analyzer: "obsnames", File: "b.go", Message: "never fires", Justification: "stale"},
	}}
	findings := []Finding{
		{Analyzer: "gocatcher", File: "a.go", Line: 10, Message: "msg one"},
		{Analyzer: "gocatcher", File: "a.go", Line: 99, Message: "msg one"}, // same key, moved line
		{Analyzer: "gocatcher", File: "a.go", Line: 11, Message: "msg two"},
	}
	kept, suppressed, unused := bl.Apply(findings)
	if len(kept) != 1 || kept[0].Message != "msg two" {
		t.Fatalf("kept = %v, want only the unbaselined finding", kept)
	}
	if len(suppressed) != 2 {
		t.Fatalf("suppressed = %v, want both line variants of the baselined key", suppressed)
	}
	if len(unused) != 1 || unused[0].Message != "never fires" {
		t.Fatalf("unused = %v, want the stale entry", unused)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	// Missing file: empty baseline, no error.
	bl, err := LoadBaseline(filepath.Join(dir, "missing.json"))
	if err != nil || len(bl.Entries) != 0 {
		t.Fatalf("missing baseline: got %v, %v; want empty, nil", bl, err)
	}

	// A justification is mandatory on every entry.
	noWhy := filepath.Join(dir, "nowhy.json")
	if err := os.WriteFile(noWhy, []byte(`{"version":1,"entries":[{"analyzer":"a","file":"f","message":"m"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(noWhy); err == nil {
		t.Fatal("baseline entry without justification loaded without error")
	}

	// Unknown versions are rejected, not misread.
	badVer := filepath.Join(dir, "v9.json")
	if err := os.WriteFile(badVer, []byte(`{"version":9,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(badVer); err == nil {
		t.Fatal("baseline with unsupported version loaded without error")
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"version":1,"entries":[{"analyzer":"a","file":"f","message":"m","justification":"why"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err = LoadBaseline(good)
	if err != nil || len(bl.Entries) != 1 {
		t.Fatalf("good baseline: got %v, %v", bl, err)
	}
}

// TestRunnerRun drives the full load path (module discovery, source
// importer, type check, analyzers) over one small real package.
func TestRunnerRun(t *testing.T) {
	r, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run([]string{"internal/par"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LoadErrors) != 0 {
		t.Fatalf("load errors: %v", res.LoadErrors)
	}
	if res.Packages != 1 {
		t.Fatalf("Packages = %d, want 1", res.Packages)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("internal/par should be clean, got %v", res.Findings)
	}
}
