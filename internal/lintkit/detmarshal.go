package lintkit

import (
	"go/ast"
	"go/types"
)

// DetMarshal enforces deterministic marshaling on output paths.
//
// The result store's cache hits are byte-identity checks over canonical
// JSON, Prometheus exposition is diffed by scrapers, and hashes are built
// from marshaled bytes. Go map iteration order is randomized, so a `range`
// over a map that feeds json.Marshal, a hash, or writer output without an
// intervening sort silently produces different bytes on every run —
// breaking cache byte-identity exactly the way an unhashed spec field does.
//
// Two shapes are flagged: (1) a map-range loop whose body itself writes
// output (json.Marshal/Encode, fmt.Fprint*, Write/WriteString, crypto
// Sums); (2) a map-range loop that appends to a slice which later reaches
// such a sink in the same function without ever being passed to a
// sort/slices call. The collect-keys-then-sort idiom used across this
// codebase passes both checks.
var DetMarshal = &Analyzer{
	Name: "detmarshal",
	Doc:  "range over a map must not feed marshal/hash/writer output without an intervening sort (cache byte-identity)",
	Run:  runDetMarshal,
}

func runDetMarshal(p *Pass) error {
	for _, f := range p.Files {
		// Track the innermost enclosing function body so the slice-flow
		// check has a scope to search.
		var bodies []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, walk)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
				ast.Inspect(n.Body, walk)
				bodies = bodies[:len(bodies)-1]
				return false
			case *ast.RangeStmt:
				if len(bodies) > 0 {
					checkMapRange(p, n, bodies[len(bodies)-1])
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func checkMapRange(p *Pass, rng *ast.RangeStmt, scope *ast.BlockStmt) {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// Shape 1: the loop body writes output directly, in map order.
	if sink := findSink(p, rng.Body); sink != "" {
		p.Reportf(rng.Pos(),
			"range over map %s writes to %s inside the loop body: output depends on randomized map iteration order; collect the keys, sort, then iterate",
			types.ExprString(rng.X), sink)
		return
	}
	// Shape 2: the loop collects into slices that later reach a sink
	// without being sorted.
	appended := appendTargets(p, rng.Body)
	if len(appended) == 0 {
		return
	}
	for _, obj := range appended {
		if sortedInScope(p, scope, obj) {
			continue
		}
		if sink := sinkUseInScope(p, scope, rng, obj); sink != "" {
			p.Reportf(rng.Pos(),
				"range over map %s collects %s which reaches %s without a sort: output depends on randomized map iteration order",
				types.ExprString(rng.X), obj.Name(), sink)
		}
	}
}

// findSink returns a description of the first order-sensitive output call
// in the node, or "".
func findSink(p *Pass, n ast.Node) string {
	sink := ""
	ast.Inspect(n, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink = sinkName(p, call)
		return sink == ""
	})
	return sink
}

// sinkName classifies a call as an order-sensitive output sink.
func sinkName(p *Pass, call *ast.CallExpr) string {
	fn := funcObjOf(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name, path := fn.Name(), fn.Pkg().Path()
	switch {
	case path == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
		return "json." + name
	case path == "encoding/json" && name == "Encode":
		return "json.Encoder.Encode"
	case path == "fmt" && (name == "Fprintf" || name == "Fprint" || name == "Fprintln"):
		return "fmt." + name
	case isCryptoSum(fn):
		return path + "." + name
	}
	// Writer-shaped methods on anything (io.Writer, hash.Hash,
	// bytes.Buffer, strings.Builder): the bytes land in output order.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			if named := recvNamed(fn); named != nil {
				return "(" + named.Obj().Name() + ")." + name
			}
			return name
		}
	}
	return ""
}

func isCryptoSum(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return (len(path) > 7 && path[:7] == "crypto/") && len(fn.Name()) >= 3 && fn.Name()[:3] == "Sum"
}

// appendTargets returns the objects of slice variables appended to inside
// the loop body (`s = append(s, ...)`).
func appendTargets(p *Pass, body *ast.BlockStmt) []types.Object {
	var objs []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(p.Info, call, "append") || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj != nil && !seen[obj] {
				seen[obj] = true
				objs = append(objs, obj)
			}
		}
		return true
	})
	return objs
}

// sortedInScope reports whether obj is ever passed into a sort or slices
// call within the function body.
func sortedInScope(p *Pass, scope *ast.BlockStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObjOf(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if containsIdentObj(p.Info, arg, obj) {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// sinkUseInScope reports the sink that consumes obj after the map-range
// loop: either directly as a sink-call argument, or by being ranged over
// with a sink in that loop's body.
func sinkUseInScope(p *Pass, scope *ast.BlockStmt, skip *ast.RangeStmt, obj types.Object) string {
	found := ""
	ast.Inspect(scope, func(n ast.Node) bool {
		if found != "" || n == skip {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s := sinkName(p, n); s != "" {
				for _, arg := range n.Args {
					if containsIdentObj(p.Info, arg, obj) {
						found = s
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.Info.Uses[id] == obj {
				if s := findSink(p, n.Body); s != "" {
					found = s
				}
			}
		}
		return true
	})
	return found
}
