// Package simmpi is a simulated message-passing runtime: the mini-app's
// substitute for MPI on the paper's testbeds (Piz Daint and MareNostrum 4,
// which this reproduction cannot access). Ranks run as goroutines and
// exchange typed messages through mailboxes; every communication and
// compute phase advances a per-rank *simulated clock* according to a
// pluggable machine model (internal/perfmodel), so strong-scaling curves are
// deterministic functions of the communication pattern and modeled costs —
// exactly the "skeleton application" idea the paper cites [48], inverted:
// real computation, modeled network.
//
// Semantics follow MPI's eager mode: Send never blocks; Recv(from, tag)
// blocks until a matching message arrives. Collectives (Barrier, Allreduce,
// Allgather) synchronize simulated clocks like their MPI counterparts.
package simmpi

import (
	"fmt"
	"math"
	"sync"
)

// CostModel prices communication and synchronization on the modeled
// machine. Implementations must be safe for concurrent use.
type CostModel interface {
	// PointToPoint returns the simulated seconds for a message of the given
	// byte size between two ranks (topology-aware: same node vs. network).
	PointToPoint(from, to int, bytes int) float64
	// Collective returns the simulated seconds a collective over n ranks
	// with the given per-rank payload takes.
	Collective(n int, bytes int) float64
}

// ZeroCost is a CostModel with free communication, for tests that only care
// about message semantics.
type ZeroCost struct{}

// PointToPoint implements CostModel.
func (ZeroCost) PointToPoint(from, to, bytes int) float64 { return 0 }

// Collective implements CostModel.
func (ZeroCost) Collective(n, bytes int) float64 { return 0 }

// AlphaBeta is the classic latency/bandwidth model:
// t = Alpha + bytes*Beta, collectives pay ceil(log2 n) rounds.
type AlphaBeta struct {
	Alpha float64 // seconds per message
	Beta  float64 // seconds per byte
}

// PointToPoint implements CostModel.
func (m AlphaBeta) PointToPoint(from, to, bytes int) float64 {
	return m.Alpha + float64(bytes)*m.Beta
}

// Collective implements CostModel.
func (m AlphaBeta) Collective(n, bytes int) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds * (m.Alpha + float64(bytes)*m.Beta)
}

type message struct {
	from, tag int
	bytes     int
	data      any
	arrival   float64 // simulated arrival time at the receiver
}

type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	aborted bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message with the given source and tag is present and
// removes it (first matching, preserving per-source-tag FIFO order). When
// the world aborts, blocked takes unwind with worldAborted instead of
// waiting forever for a message their dead peer will never send.
func (mb *mailbox) take(from, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if m.from == from && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m
			}
		}
		if mb.aborted {
			panic(worldAborted{})
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) abort() {
	mb.mu.Lock()
	mb.aborted = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// World is a set of ranks sharing a cost model and collective state.
type World struct {
	N     int
	Model CostModel

	boxes  []*mailbox
	clocks []float64

	collMu    sync.Mutex
	collCond  *sync.Cond
	collVals  []any
	collCount int
	collGen   int
	collOut   any
	collMax   float64

	// aborted/failure record the first rank panic (guarded by collMu).
	// Once set, every blocked collective and mailbox wait unwinds with a
	// worldAborted panic so Run can join instead of deadlocking.
	aborted bool
	failure any
}

// worldAborted is the panic value that unwinds ranks blocked in a
// collective or Recv after another rank panicked. It is swallowed by Run's
// per-rank recover: only the original panic is reported.
type worldAborted struct{}

// NewWorld creates a world of n ranks priced by model.
func NewWorld(n int, model CostModel) *World {
	if n <= 0 {
		panic(fmt.Sprintf("simmpi: world size %d", n))
	}
	w := &World{N: n, Model: model}
	w.boxes = make([]*mailbox, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.clocks = make([]float64, n)
	w.collCond = sync.NewCond(&w.collMu)
	w.collVals = make([]any, n)
	return w
}

// Run executes fn on every rank concurrently and blocks until all return.
// It returns the maximum simulated clock across ranks (the parallel
// wall-clock of the run).
//
// A panic on any rank aborts the world: the other ranks are released from
// whatever collective or Recv they are blocked in, Run joins normally, and
// the original panic value is available from Failure. This turns a physics
// blowup inside one rank goroutine into a per-run error the serving layer
// can attribute to the one job, instead of an unrecoverable process crash.
func (w *World) Run(fn func(r *Rank)) float64 {
	var wg sync.WaitGroup
	for i := 0; i < w.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if _, ok := v.(worldAborted); ok {
					return // secondary victim of another rank's panic
				}
				w.abort(v)
			}()
			fn(&Rank{ID: i, W: w})
		}(i)
	}
	wg.Wait()
	var max float64
	for _, c := range w.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// abort records the first failure and wakes every blocked rank.
func (w *World) abort(v any) {
	w.collMu.Lock()
	if !w.aborted {
		w.aborted = true
		w.failure = v
	}
	w.collCond.Broadcast()
	w.collMu.Unlock()
	for _, mb := range w.boxes {
		mb.abort()
	}
}

// Failure returns the panic value of the rank that aborted the world, if
// any rank panicked during Run.
func (w *World) Failure() (any, bool) {
	w.collMu.Lock()
	defer w.collMu.Unlock()
	return w.failure, w.aborted
}

// Rank is one simulated process. All methods must be called only from the
// goroutine running this rank.
type Rank struct {
	ID int
	W  *World

	// CommTime and ComputeTime decompose the simulated clock for the POP
	// efficiency metrics (internal/trace). CommTime further splits into
	// HaloTime (point-to-point transfers and their waits — the halo
	// exchanges of the SPH step) and CollectiveTime (allreduce / allgather
	// / barrier synchronization), so scaling studies can attribute lost
	// time to the phase that lost it. Invariants, up to float addition
	// order: CommTime == HaloTime + CollectiveTime and the rank's clock ==
	// ComputeTime + CommTime.
	CommTime       float64
	HaloTime       float64
	CollectiveTime float64
	ComputeTime    float64
	IdleTime       float64
}

// Clock returns the rank's simulated time.
func (r *Rank) Clock() float64 { return r.W.clocks[r.ID] }

// advance moves the simulated clock forward.
func (r *Rank) advance(dt float64) { w := r.W; w.clocks[r.ID] += dt }

// Compute charges seconds of useful computation to the simulated clock and
// runs fn (which performs the real work). fn may be nil for pure modeling.
func (r *Rank) Compute(seconds float64, fn func()) {
	if fn != nil {
		fn()
	}
	if seconds < 0 {
		seconds = 0
	}
	r.advance(seconds)
	r.ComputeTime += seconds
}

// Send delivers data to rank `to` with a tag. bytes is the modeled payload
// size (the real data travels by reference; only the clock cares about
// bytes). Send is eager: it never blocks.
func (r *Rank) Send(to, tag, bytes int, data any) {
	if to == r.ID {
		r.W.boxes[to].put(message{from: r.ID, tag: tag, bytes: bytes, data: data, arrival: r.Clock()})
		return
	}
	cost := r.W.Model.PointToPoint(r.ID, to, bytes)
	// Sender pays a small injection overhead (half the latency term);
	// arrival is send time plus full cost.
	arrival := r.Clock() + cost
	r.W.boxes[to].put(message{from: r.ID, tag: tag, bytes: bytes, data: data, arrival: arrival})
}

// Recv blocks until a message from `from` with `tag` arrives and returns its
// payload. The simulated clock advances to max(now, arrival): any gap is
// idle (wait) time, attributed to CommTime per MPI accounting.
func (r *Rank) Recv(from, tag int) any {
	m := r.W.boxes[r.ID].take(from, tag)
	now := r.Clock()
	if m.arrival > now {
		r.IdleTime += m.arrival - now
		r.advance(m.arrival - now)
	}
	// Unpacking overhead is folded into the sender-side cost model.
	wait := math.Max(0, m.arrival-now)
	r.CommTime += wait
	r.HaloTime += wait
	return m.data
}

// Barrier synchronizes all ranks: every clock advances to the global
// maximum plus the modeled collective cost.
func (r *Rank) Barrier() {
	r.Allreduce(nil, func(a, b any) any { return nil }, 0)
}

// Allreduce combines val across ranks with the reduction op (applied in
// rank order, making the result deterministic) and returns the result on
// every rank. bytes models the per-rank payload.
func (r *Rank) Allreduce(val any, op func(a, b any) any, bytes int) any {
	w := r.W
	// The critical section runs in a closure with a deferred unlock so a
	// panic (an op callback blowing up, or the abort unwind below) never
	// leaves collMu held — the abort path needs it to release the others.
	out, maxClock := func() (any, float64) {
		w.collMu.Lock()
		defer w.collMu.Unlock()
		if w.aborted {
			panic(worldAborted{})
		}
		gen := w.collGen
		w.collVals[r.ID] = val
		w.collCount++
		if w.collCount == w.N {
			// Last arrival reduces in rank order and releases the others.
			acc := w.collVals[0]
			for i := 1; i < w.N; i++ {
				acc = op(acc, w.collVals[i])
			}
			w.collOut = acc
			var maxClock float64
			for _, c := range w.clocks {
				if c > maxClock {
					maxClock = c
				}
			}
			w.collMax = maxClock
			w.collCount = 0
			w.collGen++
			w.collCond.Broadcast()
		} else {
			for gen == w.collGen {
				if w.aborted {
					panic(worldAborted{})
				}
				w.collCond.Wait()
			}
		}
		return w.collOut, w.collMax
	}()

	now := r.Clock()
	if maxClock > now {
		r.IdleTime += maxClock - now
		r.advance(maxClock - now)
	}
	cost := w.Model.Collective(w.N, bytes)
	r.advance(cost)
	spent := cost + math.Max(0, maxClock-now)
	r.CommTime += spent
	r.CollectiveTime += spent
	return out
}

// AllreduceFlo64 reduces float64 slices element-wise with op.
func (r *Rank) AllreduceF64(vals []float64, op func(a, b float64) float64) []float64 {
	out := r.Allreduce(append([]float64(nil), vals...), func(a, b any) any {
		av := a.([]float64)
		bv := b.([]float64)
		res := make([]float64, len(av))
		for i := range av {
			res[i] = op(av[i], bv[i])
		}
		return res
	}, 8*len(vals))
	return out.([]float64)
}

// MinF64 and friends are the common reductions.
func MinF64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// MaxF64 returns the larger value.
func MaxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SumF64 returns the sum.
func SumF64(a, b float64) float64 { return a + b }

// Allgather collects each rank's val into a slice indexed by rank, on every
// rank. bytes models the per-rank payload.
func (r *Rank) Allgather(val any, bytes int) []any {
	out := r.Allreduce(gatherItem{r.ID, val}, func(a, b any) any {
		var items []gatherItem
		switch v := a.(type) {
		case gatherItem:
			items = []gatherItem{v}
		case []gatherItem:
			items = v
		}
		switch v := b.(type) {
		case gatherItem:
			items = append(items, v)
		case []gatherItem:
			items = append(items, v...)
		}
		return items
	}, bytes*r.W.N)
	res := make([]any, r.W.N)
	switch v := out.(type) {
	case gatherItem:
		res[v.rank] = v.val
	case []gatherItem:
		for _, it := range v {
			res[it.rank] = it.val
		}
	}
	return res
}

type gatherItem struct {
	rank int
	val  any
}
