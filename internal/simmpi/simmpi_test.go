package simmpi

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfmodel"
)

func TestSendRecvDelivery(t *testing.T) {
	w := NewWorld(2, ZeroCost{})
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, 8, 42)
		} else {
			got := r.Recv(0, 7)
			if got.(int) != 42 {
				t.Errorf("Recv = %v, want 42", got)
			}
		}
	})
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	w := NewWorld(3, ZeroCost{})
	w.Run(func(r *Rank) {
		switch r.ID {
		case 0:
			r.Send(2, 1, 0, "from0tag1")
			r.Send(2, 2, 0, "from0tag2")
		case 1:
			r.Send(2, 1, 0, "from1tag1")
		case 2:
			// Receive out of send order: tag 2 first.
			if got := r.Recv(0, 2); got.(string) != "from0tag2" {
				t.Errorf("tag-2 recv = %v", got)
			}
			if got := r.Recv(1, 1); got.(string) != "from1tag1" {
				t.Errorf("from-1 recv = %v", got)
			}
			if got := r.Recv(0, 1); got.(string) != "from0tag1" {
				t.Errorf("tag-1 recv = %v", got)
			}
		}
	})
}

func TestFIFOPerSourceTag(t *testing.T) {
	w := NewWorld(2, ZeroCost{})
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 5, 0, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := r.Recv(0, 5).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestClockAdvancesWithCost(t *testing.T) {
	model := AlphaBeta{Alpha: 1e-3, Beta: 1e-9}
	w := NewWorld(2, model)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, 1000, nil)
		} else {
			r.Recv(0, 0)
			want := 1e-3 + 1000e-9
			if math.Abs(r.Clock()-want) > 1e-12 {
				t.Errorf("receiver clock = %g, want %g", r.Clock(), want)
			}
			if r.IdleTime <= 0 {
				t.Errorf("no idle time recorded while waiting")
			}
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	w := NewWorld(1, ZeroCost{})
	ran := false
	max := w.Run(func(r *Rank) {
		r.Compute(0.5, func() { ran = true })
		r.Compute(0.25, nil)
		if r.ComputeTime != 0.75 {
			t.Errorf("ComputeTime = %g", r.ComputeTime)
		}
	})
	if !ran {
		t.Error("compute fn not executed")
	}
	if max != 0.75 {
		t.Errorf("world time = %g, want 0.75", max)
	}
}

func TestAllreduceMin(t *testing.T) {
	w := NewWorld(4, ZeroCost{})
	w.Run(func(r *Rank) {
		vals := []float64{float64(r.ID + 1), float64(10 - r.ID)}
		out := r.AllreduceF64(vals, MinF64)
		if out[0] != 1 || out[1] != 7 {
			t.Errorf("rank %d: allreduce = %v", r.ID, out)
		}
	})
}

func TestAllreduceSumDeterministic(t *testing.T) {
	w := NewWorld(8, ZeroCost{})
	var first atomic.Value
	w.Run(func(r *Rank) {
		out := r.AllreduceF64([]float64{0.1 * float64(r.ID)}, SumF64)
		if v := first.Swap(out[0]); v != nil && v.(float64) != out[0] {
			t.Errorf("ranks disagree: %v vs %v", v, out[0])
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := NewWorld(3, ZeroCost{})
	w.Run(func(r *Rank) {
		r.Compute(float64(r.ID), nil) // clocks 0, 1, 2
		r.Barrier()
		if r.Clock() < 2 {
			t.Errorf("rank %d clock %g after barrier, want >= 2", r.ID, r.Clock())
		}
	})
}

func TestAllgather(t *testing.T) {
	w := NewWorld(4, ZeroCost{})
	w.Run(func(r *Rank) {
		out := r.Allgather(r.ID*10, 8)
		for i, v := range out {
			if v.(int) != i*10 {
				t.Errorf("rank %d: gathered[%d] = %v", r.ID, i, v)
			}
		}
	})
}

func TestCollectiveCostCharged(t *testing.T) {
	model := AlphaBeta{Alpha: 1e-3}
	w := NewWorld(4, model)
	wall := w.Run(func(r *Rank) {
		r.Barrier()
	})
	// ceil(log2 4) = 2 rounds of alpha.
	if math.Abs(wall-2e-3) > 1e-9 {
		t.Errorf("barrier wall = %g, want 2e-3", wall)
	}
}

func TestSelfSendFree(t *testing.T) {
	model := AlphaBeta{Alpha: 1, Beta: 1}
	w := NewWorld(1, model)
	wall := w.Run(func(r *Rank) {
		r.Send(0, 0, 1000, "x")
		if got := r.Recv(0, 0); got.(string) != "x" {
			t.Errorf("self recv = %v", got)
		}
	})
	if wall != 0 {
		t.Errorf("self send cost %g, want 0", wall)
	}
}

func TestWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0, ZeroCost{})
}

func TestPerfmodelNetIntraVsInter(t *testing.T) {
	m := perfmodel.PizDaint()
	net := m.NewNet(24, 12) // 2 nodes
	intra := net.PointToPoint(0, 5, 1000)
	inter := net.PointToPoint(0, 13, 1000)
	if intra >= inter {
		t.Errorf("intra-node cost %g >= inter-node %g", intra, inter)
	}
}

func TestPerfmodelDragonflyTopologyKicksIn(t *testing.T) {
	m := perfmodel.PizDaint()
	small := m.NewNet(24, 12)
	big := m.NewNet(12000, 12)
	if small.PointToPoint(0, 13, 0) >= big.PointToPoint(0, 9000, 0) {
		t.Error("large dragonfly not slower than small")
	}
	mn := perfmodel.MareNostrum()
	flat1 := mn.NewNet(96, 48)
	flat2 := mn.NewNet(9600, 48)
	if flat1.PointToPoint(0, 50, 0) != flat2.PointToPoint(0, 5000, 0) {
		t.Error("fat tree should be size-independent")
	}
}

func TestPhaseSecondsAmdahl(t *testing.T) {
	m := perfmodel.PizDaint()
	serial := m.PhaseSeconds(1e6, 1e6, 1, 0.1)
	if math.Abs(serial-1) > 1e-12 {
		t.Fatalf("1-thread time = %g, want 1", serial)
	}
	t12 := m.PhaseSeconds(1e6, 1e6, 12, 0.1)
	want := 0.1 + 0.9/12
	if math.Abs(t12-want) > 1e-12 {
		t.Fatalf("12-thread time = %g, want %g", t12, want)
	}
	if m.PhaseSeconds(0, 1e6, 4, 0) != 0 {
		t.Fatal("zero work costs time")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"daint", "marenostrum", "mn4"} {
		if _, err := perfmodel.ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := perfmodel.ByName("summit"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, ZeroCost{})
	b.ResetTimer()
	w.Run(func(r *Rank) {
		for i := 0; i < b.N; i++ {
			if r.ID == 0 {
				r.Send(1, 0, 8, i)
				r.Recv(1, 1)
			} else {
				r.Recv(0, 0)
				r.Send(0, 1, 8, i)
			}
		}
	})
}

func BenchmarkAllreduce8(b *testing.B) {
	w := NewWorld(8, ZeroCost{})
	b.ResetTimer()
	w.Run(func(r *Rank) {
		v := []float64{1}
		for i := 0; i < b.N; i++ {
			r.AllreduceF64(v, SumF64)
		}
	})
}

// TestPhaseTimingInvariants pins the per-phase accounting contract the
// scaling studies rely on: CommTime splits exactly into HaloTime
// (point-to-point) + CollectiveTime, and the simulated clock decomposes
// into ComputeTime + CommTime.
func TestPhaseTimingInvariants(t *testing.T) {
	model := AlphaBeta{Alpha: 1e-3, Beta: 1e-8}
	w := NewWorld(4, model)
	w.Run(func(r *Rank) {
		for step := 0; step < 3; step++ {
			// Uneven compute creates genuine waits on both paths.
			r.Compute(float64(r.ID+1)*1e-2, nil)
			next := (r.ID + 1) % w.N
			prev := (r.ID + w.N - 1) % w.N
			r.Send(next, 1, 1<<12, r.ID)
			r.Recv(prev, 1)
			r.AllreduceF64([]float64{float64(r.ID)}, MaxF64)
		}

		const tol = 1e-12
		if d := math.Abs(r.CommTime - (r.HaloTime + r.CollectiveTime)); d > tol*math.Max(1, r.CommTime) {
			t.Errorf("rank %d: CommTime %.12g != Halo %.12g + Collective %.12g",
				r.ID, r.CommTime, r.HaloTime, r.CollectiveTime)
		}
		if d := math.Abs(r.Clock() - (r.ComputeTime + r.CommTime)); d > tol*math.Max(1, r.Clock()) {
			t.Errorf("rank %d: clock %.12g != Compute %.12g + Comm %.12g",
				r.ID, r.Clock(), r.ComputeTime, r.CommTime)
		}
		if r.HaloTime < 0 || r.CollectiveTime < 0 {
			t.Errorf("rank %d: negative phase time (halo %g, collective %g)", r.ID, r.HaloTime, r.CollectiveTime)
		}
		if r.CollectiveTime == 0 {
			t.Errorf("rank %d: collectives ran but CollectiveTime is zero", r.ID)
		}
	})
}

func TestRunContainsRankPanic(t *testing.T) {
	// One rank panicking must release the ranks blocked in a collective and
	// in a Recv whose sender died — Run joins, and the panic is reported
	// through Failure instead of crashing the process.
	w := NewWorld(4, ZeroCost{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(r *Rank) {
			switch r.ID {
			case 0:
				panic("rank 0 exploded")
			case 1:
				r.Recv(0, 7) // message rank 0 will never send
			default:
				r.AllreduceF64([]float64{1}, SumF64) // collective rank 0 never joins
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked after a rank panic")
	}
	v, ok := w.Failure()
	if !ok {
		t.Fatal("Failure() reports no abort after a rank panic")
	}
	if v != "rank 0 exploded" {
		t.Fatalf("Failure() = %v, want the original panic value", v)
	}
}

func TestRunNoFailureOnCleanWorld(t *testing.T) {
	w := NewWorld(2, ZeroCost{})
	w.Run(func(r *Rank) { r.Barrier() })
	if v, ok := w.Failure(); ok {
		t.Fatalf("Failure() = %v on a clean run", v)
	}
}
